"""The array short-circuiting pass (paper section V).

Entry point: :func:`short_circuit_fun`, run on a memory-annotated function
(after introduction, hoisting and last-use analysis).  The pass only ever
*changes memory annotations* -- re-homing candidate arrays (and all their
aliases) into the destination memory of a circuit point -- so the executor's
single elision rule turns the circuit-point copy into a no-op.

Circuit points (detected bottom-up per block):

1. ``let xss[W] = b_lu``      -- slice updates whose value is lastly used;
2. ``let x = concat a b_lu``  -- concatenations (per lastly-used operand);
3. the implicit ``xss[i] = r`` of every mapnest result (paper fig. 6b).

For each candidate the analysis walks from the circuit point up to the
creation of the candidate's fresh array, maintaining the two summaries of
section V-B (``U_xss``: uses of destination memory below the current
statement; ``W_bs``: writes through the rebased candidate), checking every
new write against the uses with the LMAD non-overlap test, rebasing
change-of-layout chains through operation inverses, translating index
functions through the scalar symbol table, and recursing into ``if``/
``loop`` bodies with the cross-iteration conditions.  Transitive chains
(fig. 6a) resolve across fixpoint rounds.

Every check failure is recorded with a reason and simply keeps the copy --
the failure mode is a 1.1-2x slowdown, never incorrectness (paper III-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lmad import IndexFn, NonOverlapChecker, ProverPool
from repro.symbolic import Context, Prover, SymExpr, sym

from repro.ir import ast as A
from repro.ir.lastuse import analyze_last_uses
from repro.ir.types import ArrayType
from repro.mem.memir import MemBinding, binding_of, param_mem_name
from repro.opt.rebase import inverse_rebase, translate_ixfn, widened_slice_inverse
from repro.opt.summaries import (
    AccessSet,
    collect_block_dst_uses,
    collect_dst_uses,
    _ixfn_region_of_update,
)


@dataclass(frozen=True)
class ScFailure:
    """One abandoned short-circuiting candidate, as a structured record.

    ``rule`` is the safety-condition identifier (the strings raised by
    :class:`_Failure`, e.g. ``update:write-overlaps-uses``); ``location``
    identifies the candidate by its root name and destination block.
    """

    rule: str
    location: str

    def render(self) -> str:
        return f"{self.rule} @ {self.location}" if self.location else self.rule


@dataclass
class ShortCircuitStats:
    """Outcome counters plus per-reason failure tallies."""

    attempted: int = 0
    committed: int = 0
    #: Copies of dead sources whose result was re-homed into the source's
    #: memory block (the paper's "semantically different arrays in the same
    #: memory block" footprint optimization; drives the NN benchmark).
    reused_copies: int = 0
    rounds: int = 0
    #: Candidates committed only thanks to a widened slice inverse (the
    #: polyhedral leftover-region obligation proved); a strict subset of
    #: ``committed``.
    widened_candidates: int = 0
    #: Rebased writes classified as provable no-ops (value already present
    #: at the target address) and thereby exempted from the leftover check.
    noop_writes: int = 0
    #: Deciding-tier tallies for this pass's disjointness queries
    #: (``structural`` / ``polyhedral`` / ``unknown``), from the pool.
    tiers: Dict[str, int] = field(default_factory=dict)
    failures: Dict[str, int] = field(default_factory=dict)
    #: Per-candidate failure records ((rule, location) pairs); the
    #: ``failures`` tallies above are kept in sync and derivable from
    #: these.
    failure_records: List[ScFailure] = field(default_factory=list)
    #: Re-failures of an already-tallied site (fixpoint rounds re-attempt
    #: every candidate), suppressed from the per-rule tallies.
    repeat_failures: int = 0
    committed_roots: List[str] = field(default_factory=list)

    def fail(self, reason: str, location: str = "") -> None:
        # One site, one tally: a candidate rejected again on a later
        # fixpoint round (possibly by a different rule, the program
        # having changed around it) counts only under the rule that
        # first decided it.
        if location and any(
            r.location == location for r in self.failure_records
        ):
            self.repeat_failures += 1
            return
        self.failures[reason] = self.failures.get(reason, 0) + 1
        self.failure_records.append(ScFailure(reason, location))

    def summary(self) -> str:
        lines = [
            f"candidates attempted : {self.attempted}",
            f"candidates committed : {self.committed}",
            f"dead-copy reuses     : {self.reused_copies}",
            f"fixpoint rounds      : {self.rounds}",
        ]
        if self.widened_candidates:
            lines.append(f"widened-slice commits: {self.widened_candidates}")
        if self.noop_writes:
            lines.append(f"no-op writes exempted: {self.noop_writes}")
        for tier, count in sorted(self.tiers.items()):
            if count:
                lines.append(f"  tier ({tier}): {count}")
        for reason, count in sorted(self.failures.items()):
            lines.append(f"  failed ({reason}): {count}")
        return "\n".join(lines)


@dataclass
class _Scope:
    """Static per-block information for the analysis."""

    ctx: Context
    symtab: Dict[str, SymExpr]
    bindings: Dict[str, MemBinding]
    outer_names: Set[str]
    block: A.Block
    # names defined by stmts[0..i-1], per index i (filled lazily)
    defs_prefix: List[Set[str]] = field(default_factory=list)
    allocs_here: Dict[str, int] = field(default_factory=dict)

    def build_prefixes(self) -> None:
        self.defs_prefix = []
        seen: Set[str] = set()
        for i, stmt in enumerate(self.block.stmts):
            self.defs_prefix.append(set(seen))
            seen |= set(stmt.names)
            if isinstance(stmt.exp, A.Alloc):
                self.allocs_here[stmt.names[0]] = i

    def available_at(self, idx: int) -> Set[str]:
        return self.outer_names | self.defs_prefix[idx]


class _Candidate:
    """State of one in-flight short-circuiting attempt."""

    def __init__(
        self, root: str, root_ixfn: IndexFn, dst_mem: str, dst_space: str = "hbm"
    ):
        self.root = root
        self.dst_mem = dst_mem
        self.dst_space = dst_space
        self.pending: Dict[str, IndexFn] = {root: root_ixfn}
        self.names: Set[str] = {root}
        self.planned: List[Tuple[A.PatElem, MemBinding]] = []
        self.planned_params: List[Tuple[Dict[str, MemBinding], str, MemBinding]] = []
        self.uses = AccessSet()  # U_xss
        self.writes = AccessSet()  # W_bs
        #: Statement index the walk is currently at (for ordering checks).
        self.walk_pos: int = -1
        #: Smallest statement index at which a candidate write occurs.
        self.first_write_pos: Optional[int] = None
        #: Boundary names (loop params) the chain was closed against.
        self.boundary_used: Set[str] = set()
        #: Leftover regions of widened slice inverses (IntSets of address
        #: space); non-empty iff some link of the chain was widened.  Every
        #: real write above that link must be proven disjoint from these.
        self.extra_sets: List = []
        #: Count of writes classified as provable no-ops.
        self.noops: int = 0


class _Failure(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


_CREATORS = (A.Copy, A.Iota, A.Replicate, A.Scratch, A.Concat, A.Map)
_LAYOUT = (A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse, A.VarRef)


class _ShortCircuiter:
    def __init__(
        self,
        fun: A.Fun,
        enable_splitting: bool = True,
        max_rounds: int = 4,
        shared=None,
    ):
        self.fun = fun
        self.enable_splitting = enable_splitting
        self.max_rounds = max_rounds
        #: Optional per-compilation shared state (duck-typed: a
        #: :class:`repro.pipeline.CompileContext` or anything with a
        #: ``provers`` :class:`repro.lmad.ProverPool` and a
        #: ``root_context()``).  When present, Prover/NonOverlapChecker
        #: memos are pooled there and survive this pass, so fusion and
        #: reuse queries against the same contexts start warm.
        self.shared = shared
        self.stats = ShortCircuitStats()
        self._rebased: Set[str] = set()
        #: One Prover (and its tiered NonOverlapChecker) per assumption
        #: context, shared across every non-overlap query issued against
        #: that context, so the prover's memo table amortizes over all
        #: circuit points of a block instead of being rebuilt per query
        #: batch (paper section V-D).  A compilation-shared pool extends
        #: the amortization across passes; a standalone run gets a private
        #: pool with the same LRU bounds and polyhedral fallback tier.
        self._pool: ProverPool = (
            shared.provers if shared is not None else ProverPool()
        )
        self._cross_iter_cache: Dict[tuple, Tuple[Context, NonOverlapChecker]] = {}

    def _prover_for(self, ctx: Context) -> Tuple[Prover, NonOverlapChecker]:
        return self._pool.pair_for(ctx, self.enable_splitting)

    # ==================================================================
    def run(self) -> ShortCircuitStats:
        from repro.mem.introduce import refresh_derived_bindings

        self._pool.set_client("sc")
        tier_base = dict(self._pool.tiers.get("sc", {}))
        for _ in range(self.max_rounds):
            analyze_last_uses(self.fun)
            self.stats.rounds += 1
            # Per-round contexts are rebuilt (and may gain equalities)
            # every round.  The pool needs no clearing: rebuilt contexts
            # are new objects with fresh (LRU-bounded) entries, and the
            # long-lived root context's facts are stable across rounds.
            self._cross_iter_cache.clear()
            root_scope = self._root_scope()
            changed = self._process_block(self.fun.body, root_scope)
            # Views and update results derived from rebased arrays must
            # follow their sources into the new memory.
            refresh_derived_bindings(self.fun)
            if not changed:
                break
        tier_now = self._pool.tiers.get("sc", {})
        self.stats.tiers = {
            k: tier_now.get(k, 0) - tier_base.get(k, 0)
            for k in set(tier_now) | set(tier_base)
        }
        return self.stats

    def _root_scope(self) -> _Scope:
        ctx = (
            self.shared.root_context()
            if self.shared is not None
            else self.fun.build_context()
        )
        bindings: Dict[str, MemBinding] = {}
        outer: Set[str] = set()
        for p in self.fun.params:
            outer.add(p.name)
            if isinstance(p.type, ArrayType):
                bindings[p.name] = MemBinding(
                    param_mem_name(p.name), IndexFn.row_major(p.type.shape)
                )
                outer.add(param_mem_name(p.name))
                # Shape variables are implicitly in scope everywhere.
                for s in p.type.shape:
                    outer |= s.free_vars()
        for _, var, expr in self.fun.assumptions:
            outer.add(var)
            outer |= expr.free_vars()
        return _Scope(ctx, {}, bindings, outer, self.fun.body)

    # ==================================================================
    # Scope construction
    # ==================================================================
    def _child_scope(
        self,
        block: A.Block,
        parent: _Scope,
        parent_idx: int,
        extra_names: Set[str],
        extra_bindings: Dict[str, MemBinding],
        ranges: List[Tuple[str, SymExpr, SymExpr]],
    ) -> _Scope:
        ctx = parent.ctx.extended()
        for var, lo, hi in ranges:
            ctx.assume_range(var, lo, hi)
        bindings = dict(parent.bindings)
        bindings.update(extra_bindings)
        outer = parent.available_at(parent_idx) | set(parent.symtab) | extra_names
        outer |= set(parent.outer_names)
        scope = _Scope(ctx, dict(parent.symtab), bindings, outer, block)
        return scope

    def _populate_scope(self, scope: _Scope) -> None:
        """Record scalar defs / bindings walking the block downward."""
        scope.build_prefixes()
        for stmt in scope.block.stmts:
            if isinstance(stmt.exp, A.ScalarE):
                name = stmt.names[0]
                expr = stmt.exp.expr
                if name not in expr.free_vars():
                    scope.symtab[name] = expr
                    try:
                        scope.ctx.define(name, expr)
                    except ValueError:
                        pass
            for pe in stmt.pattern:
                if pe.is_array() and pe.mem is not None:
                    scope.bindings[pe.name] = binding_of(pe)

    # ==================================================================
    # Recursive driver
    # ==================================================================
    def _process_block(self, block: A.Block, scope: _Scope) -> bool:
        self._populate_scope(scope)
        changed = False

        # Recurse into nested blocks first (inner circuit points commit
        # before outer ones look at their statements this round).
        for idx, stmt in enumerate(block.stmts):
            exp = stmt.exp
            if isinstance(exp, A.Map):
                child = self._map_body_scope(stmt, exp, scope, idx)
                changed |= self._process_block(exp.lam.body, child)
            elif isinstance(exp, A.Loop):
                child = self._loop_body_scope(stmt, exp, scope, idx)
                changed |= self._process_block(exp.body, child)
            elif isinstance(exp, A.If):
                for blk in (exp.then_block, exp.else_block):
                    child = self._child_scope(blk, scope, idx, set(), {}, [])
                    changed |= self._process_block(blk, child)

        # This block's circuit points, bottom-up.
        self._populate_scope(scope)  # refresh after child commits
        for idx in range(len(block.stmts) - 1, -1, -1):
            stmt = block.stmts[idx]
            exp = stmt.exp
            if isinstance(exp, A.Update) and isinstance(exp.value, str):
                changed |= self._circuit_update(block, scope, idx, stmt, exp)
            elif isinstance(exp, A.Concat):
                changed |= self._circuit_concat(block, scope, idx, stmt, exp)
            elif isinstance(exp, A.Map):
                changed |= self._circuit_map_implicit(block, scope, idx, stmt, exp)
            elif isinstance(exp, A.Copy):
                done = self._circuit_copy(block, scope, idx, stmt, exp)
                if not done:
                    done = self._circuit_copy_reuse(scope, stmt, exp)
                changed |= done
        return changed

    def _circuit_copy(self, block, scope, idx, stmt, exp: A.Copy) -> bool:
        """``let x = copy b_lu`` as a full circuit point (concat of one)."""
        if exp.src not in stmt.last_uses:
            return False
        dst = binding_of(stmt.pattern[0])
        src = scope.bindings.get(exp.src)
        if dst is None or src is None:
            return False
        if src.mem == dst.mem and src.ixfn == dst.ixfn:
            return False  # already a no-op
        cand = _Candidate(exp.src, dst.ixfn, dst.mem, dst.space)
        return self._attempt(block, scope, idx, cand)

    def _circuit_copy_reuse(self, scope: _Scope, stmt: A.Let, exp: A.Copy) -> bool:
        """``let x = copy b_lu``: reuse the dead source's memory for ``x``.

        When the copied array (with all its aliases) is dead, the copy's
        result can simply be re-homed into the source's block, making the
        copy a no-op -- provided the source occupies its block exactly
        (whole-buffer row-major), so that later in-place updates of ``x``
        land on dead data only.  This is the memory-footprint half of the
        paper's introduction (distinct arrays sharing one block) and the
        mechanism behind the NN benchmark's eliminated per-iteration copy.
        """
        if exp.src not in stmt.last_uses:
            return False
        sb = scope.bindings.get(exp.src)
        if sb is None:
            return False
        pe = stmt.pattern[0]
        if pe.name in self._rebased:
            return False  # a full short-circuit already re-homed this copy
        cur = binding_of(pe)
        if cur is not None and cur.mem == sb.mem:
            return False  # already reused
        prover, _ = self._prover_for(scope.ctx)
        if not sb.ixfn.is_direct(prover):
            return False
        pe.mem = MemBinding(sb.mem, sb.ixfn, sb.space)
        scope.bindings[pe.name] = pe.mem
        self.stats.reused_copies += 1
        return True

    def _map_body_scope(self, stmt, exp: A.Map, scope: _Scope, idx: int) -> _Scope:
        tvar = exp.lam.params[0]
        return self._child_scope(
            exp.lam.body,
            scope,
            idx,
            {tvar},
            {},
            [(tvar, sym(0), exp.width - 1)],
        )

    def _loop_body_scope(self, stmt, exp: A.Loop, scope: _Scope, idx: int) -> _Scope:
        extra_bindings: Dict[str, MemBinding] = {}
        pb = getattr(exp.body, "param_bindings", {})
        extra_bindings.update(pb)
        names = {exp.index} | {p.name for p, _ in exp.carried}
        return self._child_scope(
            exp.body,
            scope,
            idx,
            names,
            extra_bindings,
            [(exp.index, sym(0), exp.count - 1)],
        )

    # ==================================================================
    # Circuit-point detection
    # ==================================================================
    def _circuit_update(self, block, scope, idx, stmt, exp: A.Update) -> bool:
        value = exp.value
        if value not in stmt.last_uses:
            return False
        src_binding = scope.bindings.get(exp.src)
        val_binding = scope.bindings.get(value)
        if src_binding is None or val_binding is None:
            return False
        region = _ixfn_region_of_update(src_binding, exp.spec)
        if val_binding.mem == src_binding.mem and val_binding.ixfn == region:
            return False  # already short-circuited
        cand = _Candidate(value, region, src_binding.mem, src_binding.space)
        return self._attempt(block, scope, idx, cand)

    def _circuit_concat(self, block, scope, idx, stmt, exp: A.Concat) -> bool:
        dst_binding = binding_of(stmt.pattern[0])
        if dst_binding is None:
            return False
        changed = False
        offset: SymExpr = sym(0)
        rest_dims = list(dst_binding.ixfn.shape[1:])
        seen: Set[str] = set()
        for o in exp.srcs:
            ob = scope.bindings.get(o)
            if ob is None:
                continue
            rows = ob.ixfn.shape[0]
            # A duplicated operand can fill at most one segment without a
            # copy (paper footnote 17): only its first occurrence chains.
            if o in stmt.last_uses and o not in seen:
                seen.add(o)
                region = dst_binding.ixfn.slice_triplets(
                    [(offset, rows, sym(1))]
                    + [(sym(0), d, sym(1)) for d in rest_dims]
                )
                if not (ob.mem == dst_binding.mem and ob.ixfn == region):
                    cand = _Candidate(o, region, dst_binding.mem, dst_binding.space)
                    changed |= self._attempt(block, scope, idx, cand)
            offset = offset + rows
        return changed

    def _circuit_map_implicit(self, block, scope, idx, stmt, exp: A.Map) -> bool:
        """The implicit ``xss[i] = r`` of each array result (fig. 6b)."""
        changed = False
        body = exp.lam.body
        tvar = exp.lam.params[0]
        free = A.block_free_vars(body)
        for k, pe in enumerate(stmt.pattern):
            if not pe.is_array():
                continue
            r = body.result[k]
            if r in free or r == tvar:
                continue  # not created inside the body
            dstb = binding_of(pe)
            if dstb is None:
                continue
            region = dstb.ixfn.fix_dim(0, SymExpr.var(tvar))
            child = self._map_body_scope(stmt, exp, scope, idx)
            self._populate_scope(child)
            rb = child.bindings.get(r)
            if rb is None or (rb.mem == dstb.mem and rb.ixfn == region):
                continue
            cand = _Candidate(r, region, dstb.mem, dstb.space)
            ok = self._attempt(
                body,
                child,
                len(body.stmts),
                cand,
                cross_iteration=(tvar, exp.width, True),
            )
            changed |= ok
        return changed

    # ==================================================================
    # The bottom-up candidate walk
    # ==================================================================
    def _attempt(
        self,
        block: A.Block,
        scope: _Scope,
        circuit_idx: int,
        cand: _Candidate,
        cross_iteration: Optional[Tuple[str, SymExpr, bool]] = None,
    ) -> bool:
        self.stats.attempted += 1
        prover, checker = self._prover_for(scope.ctx)
        try:
            self._walk(block, scope, circuit_idx, cand, prover, checker)
            if cand.pending:
                raise _Failure("creation-not-found")
            if cross_iteration is not None:
                var, count, both = cross_iteration
                self._check_cross_iteration(
                    cand.writes, cand.uses, var, count, both, scope
                )
        except _Failure as f:
            self.stats.fail(f.reason, f"root={cand.root} dst={cand.dst_mem}")
            return False
        # Commit.
        for pe, binding in cand.planned:
            pe.mem = binding
            scope.bindings[pe.name] = binding
            self._rebased.add(pe.name)
        for pb_dict, pname, binding in cand.planned_params:
            pb_dict[pname] = binding
            scope.bindings[pname] = binding
            self._rebased.add(pname)
        self.stats.committed += 1
        self.stats.committed_roots.append(cand.root)
        if cand.extra_sets:
            self.stats.widened_candidates += 1
        self.stats.noop_writes += cand.noops
        return True

    def _walk(
        self,
        block: A.Block,
        scope: _Scope,
        from_idx: int,
        cand: _Candidate,
        prover: Prover,
        checker: NonOverlapChecker,
        boundary_ok: Optional[Dict[str, IndexFn]] = None,
    ) -> None:
        for j in range(from_idx - 1, -1, -1):
            stmt = block.stmts[j]
            cand.walk_pos = j
            hit = set(stmt.names) & set(cand.pending)
            if hit:
                before = (len(cand.writes.lmads), cand.writes.unknown)
                self._handle_definition(stmt, j, block, scope, cand, prover, checker)
                if (len(cand.writes.lmads), cand.writes.unknown) != before:
                    cand.first_write_pos = j
                if not cand.pending:
                    return
            else:
                uses = collect_dst_uses(
                    stmt,
                    cand.dst_mem,
                    scope.bindings,
                    prover,
                    skip_vars=frozenset(cand.names),
                )
                cand.uses.add_all(uses)
        # End of block: only boundary names may remain pending.
        if boundary_ok:
            for v in list(cand.pending):
                if v in boundary_ok and cand.pending[v] == boundary_ok[v]:
                    del cand.pending[v]
                    cand.boundary_used.add(v)

    # ------------------------------------------------------------------
    def _check_write(
        self,
        region: IndexFn,
        cand: _Candidate,
        checker: NonOverlapChecker,
        what: str,
        extra_uses: Optional[AccessSet] = None,
    ) -> None:
        w = AccessSet()
        w.add_ixfn(region)
        if w.unknown:
            raise _Failure(f"{what}:composed-write-region")
        if not w.disjoint_from(cand.uses, checker):
            raise _Failure(f"{what}:write-overlaps-uses")
        if extra_uses is not None and not w.disjoint_from(extra_uses, checker):
            raise _Failure(f"{what}:write-overlaps-kernel-reads")
        if cand.extra_sets:
            self._check_extra_obligation(w, cand, checker, what)
        cand.writes.add_all(w)

    def _check_extra_obligation(
        self,
        w: AccessSet,
        cand: _Candidate,
        checker: NonOverlapChecker,
        what: str,
    ) -> None:
        """Real writes above a widened slice link must stay inside the
        slice box: prove each write disjoint from every leftover region
        (a relation-emptiness query -- there is no structural form)."""
        engine = getattr(checker, "engine", None)
        if engine is None:
            raise _Failure(f"{what}:widened-extra-unverifiable")
        from repro.isl.emptiness import Verdict

        for extra in cand.extra_sets:
            for l in w.lmads:
                if engine.disjoint_from_extra(l, extra) is not Verdict.EMPTY:
                    self._pool.record_tier("unknown")
                    raise _Failure(f"{what}:widened-extra-clobbered")
                self._pool.record_tier("polyhedral")

    def _is_noop_write(
        self,
        j: int,
        block: A.Block,
        scope: _Scope,
        exp: A.Update,
        region: IndexFn,
        prover: Prover,
        cand: _Candidate,
    ) -> bool:
        """Is this rebased point write provably a no-op?

        The boundary fills of a widened candidate (e.g. NW's first row /
        first column, paper fig. 9) read a destination-memory element and
        -- under the widened layout -- store it back at the very same
        address.  Conditions: the stored value is defined by an ``Index``
        of a non-chain array bound to the destination block, no statement
        between the read and the write can touch memory, and the read
        address provably equals the write address.
        """
        if not isinstance(exp.spec, A.PointSpec):
            return False
        if not isinstance(exp.value, str):
            return False
        single = region.as_single()
        if single is None or single.dims:
            return False
        def_idx = None
        for i in range(j - 1, -1, -1):
            if exp.value in block.stmts[i].names:
                def_idx = i
                break
        if def_idx is None:
            return False
        vdef = block.stmts[def_idx].exp
        if not isinstance(vdef, A.Index) or vdef.src in cand.names:
            return False
        vb = scope.bindings.get(vdef.src)
        if vb is None or vb.mem != cand.dst_mem:
            return False
        vsingle = vb.ixfn.as_single()
        if vsingle is None:
            return False
        for i in range(def_idx + 1, j):
            mid = block.stmts[i].exp
            if not isinstance(
                mid,
                (
                    A.ScalarE,
                    A.Lit,
                    A.Index,
                    A.BinOp,
                    A.UnOp,
                    A.SliceT,
                    A.LmadSlice,
                    A.Rearrange,
                    A.Reshape,
                    A.Reverse,
                    A.VarRef,
                ),
            ):
                return False
        return prover.eq(vsingle.apply(vdef.indices), single.offset)

    def _translated(
        self, F: IndexFn, scope: _Scope, j: int
    ) -> IndexFn:
        out = translate_ixfn(F, scope.available_at(j), scope.symtab)
        if out is None:
            raise _Failure("untranslatable-ixfn")
        return out

    def _require_dst_in_scope(self, scope: _Scope, j: int, dst_mem: str) -> None:
        pos = scope.allocs_here.get(dst_mem)
        if pos is not None and pos > j:
            raise _Failure("dst-memory-not-in-scope")

    # ------------------------------------------------------------------
    def _handle_definition(
        self,
        stmt: A.Let,
        j: int,
        block: A.Block,
        scope: _Scope,
        cand: _Candidate,
        prover: Prover,
        checker: NonOverlapChecker,
    ) -> None:
        exp = stmt.exp
        for pe in stmt.pattern:
            if pe.name not in cand.pending:
                continue
            F = cand.pending.pop(pe.name)
            Ft = self._translated(F, scope, j)

            if isinstance(exp, _CREATORS):
                self._require_dst_in_scope(scope, j, cand.dst_mem)
                if isinstance(exp, A.Map):
                    self._validate_creating_map(stmt, j, exp, Ft, scope, cand, prover, checker)
                elif not isinstance(exp, A.Scratch):
                    self._check_write(Ft, cand, checker, type(exp).__name__.lower())
                cand.planned.append((pe, MemBinding(cand.dst_mem, Ft, cand.dst_space)))
                if isinstance(exp, A.Concat):
                    self._chain_concat_operands(stmt, exp, Ft, scope, cand)
                continue

            if isinstance(exp, _LAYOUT):
                src = exp.src if not isinstance(exp, A.VarRef) else exp.name
                src_b = scope.bindings.get(src)
                if src_b is None:
                    raise _Failure("layout-src-unbound")
                inv = inverse_rebase(exp, Ft, src_b.ixfn.shape, prover)
                if inv is None:
                    # Polyhedral tier: a unit-step triplet slice has a
                    # *widened* inverse covering the full source shape.
                    # The widened layout claims extra destination
                    # addresses (the box faces outside the slice); every
                    # real write above this link must be proven disjoint
                    # from that leftover region (see _check_write).
                    wide = widened_slice_inverse(
                        exp, Ft, src_b.ixfn.shape, prover
                    )
                    if wide is None:
                        raise _Failure("non-invertible-layout")
                    from repro.isl.bridge import slice_box_difference

                    inv, starts, counts = wide
                    cand.extra_sets.append(
                        slice_box_difference(inv.as_single(), starts, counts)
                    )
                cand.planned.append((pe, MemBinding(cand.dst_mem, Ft, cand.dst_space)))
                cand.pending[src] = inv
                cand.names.add(src)
                continue

            if isinstance(exp, A.Update):
                region = _ixfn_region_of_update(
                    MemBinding(cand.dst_mem, Ft, cand.dst_space), exp.spec
                )
                if cand.extra_sets and self._is_noop_write(
                    j, block, scope, exp, region, prover, cand
                ):
                    # The write provably stores the value already present
                    # at its (widened) address: it does not change memory,
                    # so it is exempt from the write checks -- while its
                    # defining read stays in the use summary, keeping the
                    # cross-thread conditions intact.
                    cand.noops += 1
                else:
                    # If the written value itself reads destination
                    # memory, the read and the (simultaneous) write must
                    # not overlap.
                    extra = None
                    if (
                        isinstance(exp.value, str)
                        and exp.value not in cand.names
                    ):
                        vb = scope.bindings.get(exp.value)
                        if vb is not None and vb.mem == cand.dst_mem:
                            extra = AccessSet()
                            extra.add_ixfn(vb.ixfn)
                    self._check_write(region, cand, checker, "update", extra)
                cand.planned.append((pe, MemBinding(cand.dst_mem, Ft, cand.dst_space)))
                cand.pending[exp.src] = Ft
                cand.names.add(exp.src)
                continue

            if isinstance(exp, A.If):
                self._handle_if_definition(stmt, j, exp, pe, Ft, scope, cand, prover, checker)
                continue

            if isinstance(exp, A.Loop):
                self._handle_loop_definition(stmt, j, exp, pe, Ft, scope, cand, prover, checker)
                continue

            raise _Failure(f"unsupported-definition:{type(exp).__name__}")

    # ------------------------------------------------------------------
    def _validate_creating_map(
        self,
        stmt: A.Let,
        j: int,
        exp: A.Map,
        Ft,
        scope: _Scope,
        cand: _Candidate,
        prover: Prover,
        checker: NonOverlapChecker,
    ) -> None:
        """Per-thread safety for the candidate-creating mapnest (V-B).

        Thread ``i`` writes the slice ``Ft[i]``; its writes must not overlap
        any *other* thread's destination uses (threads execute out of
        order), and the map's total writes must not overlap the uses
        accumulated below the map.  Same-thread reads precede the implicit
        result write, so fig. 1 (left) -- thread i reading exactly the
        diagonal element it replaces -- is accepted.
        """
        tvar = exp.lam.params[0]
        # Total write vs. everything used after the map.
        self._check_write(Ft, cand, checker, "map")
        # Per-thread body uses (kept parametric in the thread index).
        child = self._map_body_scope(stmt, exp, scope, j)
        self._populate_scope(child)
        body_uses = collect_block_dst_uses(
            exp.lam.body, cand.dst_mem, child.bindings, prover, frozenset(cand.names)
        )
        if body_uses.is_empty():
            return
        if body_uses.unknown:
            raise _Failure("map-body-uses-unknown")
        w_thread = AccessSet()
        single = Ft.fix_dim(0, SymExpr.var(tvar)).as_single()
        if single is None:
            raise _Failure("map:composed-write-region")
        w_thread.add_lmad(single)
        self._check_cross_iteration(
            w_thread, body_uses, tvar, exp.width, True, child
        )
        agg = body_uses.aggregated(tvar, exp.width, prover)
        cand.uses.add_all(agg)

    # ------------------------------------------------------------------
    def _chain_concat_operands(
        self, stmt: A.Let, exp: A.Concat, Ft: IndexFn, scope: _Scope, cand: _Candidate
    ) -> None:
        """Rebase lastly-used concat operands into their segments."""
        offset: SymExpr = sym(0)
        rest_dims = list(Ft.shape[1:])
        for o in exp.srcs:
            ob = scope.bindings.get(o)
            if ob is None:
                continue
            rows = ob.ixfn.shape[0]
            if o in stmt.last_uses and o not in cand.names:
                region = Ft.slice_triplets(
                    [(offset, rows, sym(1))]
                    + [(sym(0), d, sym(1)) for d in rest_dims]
                )
                cand.pending[o] = region
                cand.names.add(o)
            offset = offset + rows

    # ------------------------------------------------------------------
    def _handle_if_definition(
        self, stmt, j, exp: A.If, pe, Ft, scope, cand, prover, checker
    ) -> None:
        """Fig. 5a: recurse into both branches."""
        k = stmt.names.index(pe.name)
        cand.planned.append((pe, MemBinding(cand.dst_mem, Ft, cand.dst_space)))
        for blk in (exp.then_block, exp.else_block):
            res = blk.result[k]
            child = self._child_scope(blk, scope, j, set(), {}, [])
            self._populate_scope(child)
            sub = _Candidate(res, Ft, cand.dst_mem, cand.dst_space)
            sub.names |= cand.names
            sub.extra_sets = cand.extra_sets
            sub.uses.add_all(cand.uses)
            self._walk(blk, child, len(blk.stmts), sub, prover, checker)
            if sub.pending:
                raise _Failure("if-branch-creation-not-found")
            cand.planned.extend(sub.planned)
            cand.planned_params.extend(sub.planned_params)
            cand.writes.add_all(sub.writes)
            cand.uses.add_all(sub.uses)
            cand.names |= sub.names
            cand.noops += sub.noops

    # ------------------------------------------------------------------
    def _handle_loop_definition(
        self, stmt, j, exp: A.Loop, pe, Ft, scope, cand, prover, checker
    ) -> None:
        """Fig. 5b: rebase loop result, body result, param and initializer."""
        if exp.index in Ft.free_vars():
            raise _Failure("loop-variant-target-ixfn")
        k = stmt.names.index(pe.name)
        prm, init = exp.carried[k]
        body_res = exp.body.result[k]
        pb = getattr(exp.body, "param_bindings", None)
        if pb is None:
            raise _Failure("loop-without-param-bindings")

        child = self._loop_body_scope(stmt, exp, scope, j)
        self._populate_scope(child)

        body_prover, body_checker = self._prover_for(child.ctx)
        sub = _Candidate(body_res, Ft, cand.dst_mem, cand.dst_space)
        sub.names |= cand.names
        sub.extra_sets = cand.extra_sets
        self._walk(
            exp.body,
            child,
            len(exp.body.stmts),
            sub,
            body_prover,
            body_checker,
            boundary_ok={prm.name: Ft},
        )
        if sub.pending:
            raise _Failure("loop-body-creation-not-found")

        # Fig. 5b condition (3).  The iteration input `as` is an alias of
        # the candidate (its rebased memory is the same region), so its
        # reads are not "uses of xss"; instead, when the body produces a
        # *fresh* result each iteration (double buffering, collapsed into
        # one region by the rebase), every read of the input must happen
        # before the first write through the candidate chain.  Strictly
        # in-place chains (the result is an update of the input itself,
        # recognized by the boundary match) need no check: the rebase does
        # not change their single-buffer behaviour.
        if prm.name not in sub.boundary_used:
            last_read = _last_use_position(exp.body, prm.name)
            if last_read is not None and (
                sub.first_write_pos is None
                or sub.first_write_pos <= last_read
            ):
                raise _Failure("loop-input-live-past-first-write")

        # Cross-iteration safety (paper fig. 7b): writes of iteration i must
        # not overlap uses of any later iteration, and the loop's total
        # writes must not overlap the uses accumulated below the loop.
        self._check_cross_iteration(
            sub.writes, sub.uses, exp.index, exp.count, False, child
        )
        w_loop = sub.writes.aggregated(exp.index, exp.count, prover)
        u_loop = sub.uses.aggregated(exp.index, exp.count, prover)
        if not w_loop.disjoint_from(cand.uses, checker):
            raise _Failure("loop-writes-overlap-later-uses")

        cand.planned.append((pe, MemBinding(cand.dst_mem, Ft, cand.dst_space)))
        cand.planned.extend(sub.planned)
        cand.planned_params.extend(sub.planned_params)
        cand.planned_params.append((pb, prm.name, MemBinding(cand.dst_mem, Ft, cand.dst_space)))
        cand.writes.add_all(w_loop)
        cand.uses.add_all(u_loop)
        cand.names |= sub.names
        cand.noops += sub.noops
        # Fig. 5b condition (4): the initializer is rebased too.
        cand.pending[init] = Ft
        cand.names.add(init)

    # ------------------------------------------------------------------
    def _check_cross_iteration(
        self,
        writes: AccessSet,
        uses: AccessSet,
        var: str,
        count: SymExpr,
        both_directions: bool,
        scope: _Scope,
    ) -> None:
        """``W_i`` disjoint from ``U_j`` for j > i (and j < i for maps,
        whose iterations execute out of order -- paper section V-B)."""
        if uses.is_empty() or writes.is_empty():
            return
        if uses.unknown or writes.unknown:
            raise _Failure("cross-iteration-unknown-sets")
        jvar = f"{var}_other"
        directions = [(SymExpr.var(var) + 1, count - 1)]
        if both_directions:
            directions.append((sym(0), SymExpr.var(var) - 1))
        for lo, hi in directions:
            # The extended context (and its prover memo) depends only on
            # the enclosing scope and the shifted-iteration range, so it
            # is shared across every candidate checked at this loop/map.
            key = (id(scope.ctx), jvar, lo, hi)
            ent = self._cross_iter_cache.get(key)
            if ent is None or ent[0] is not scope.ctx:
                ctx = scope.ctx.extended()
                ctx.assume_range(jvar, lo, hi)
                checker = self._pool.checker_for(ctx, self.enable_splitting)
                self._cross_iter_cache[key] = (scope.ctx, checker)
            else:
                checker = ent[1]
            shifted = uses.substitute({var: SymExpr.var(jvar)})
            if not writes.disjoint_from(shifted, checker):
                raise _Failure("cross-iteration-overlap")


def _last_use_position(block: A.Block, name: str) -> Optional[int]:
    """Index of the last statement using ``name`` or a view derived from it."""
    derived = {name}
    last: Optional[int] = None
    for i, stmt in enumerate(block.stmts):
        if A.exp_uses(stmt.exp) & derived:
            last = i
        exp = stmt.exp
        src = None
        if isinstance(exp, A.VarRef):
            src = exp.name
        elif isinstance(exp, (A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse)):
            src = exp.src
        if src in derived:
            derived |= set(stmt.names)
    if name in block.result:
        last = len(block.stmts)
    return last


def short_circuit_fun(
    fun: A.Fun,
    enable_splitting: bool = True,
    max_rounds: int = 4,
    shared=None,
) -> ShortCircuitStats:
    """Run array short-circuiting on a memory-annotated function in place.

    ``shared`` is the compilation's shared state (see
    :class:`repro.pipeline.CompileContext`): when given, the root
    assumption context and all Prover/NonOverlapChecker memos are pooled
    there and carried into the later pipeline passes.
    """
    sc = _ShortCircuiter(fun, enable_splitting, max_rounds, shared=shared)
    return sc.run()
