"""Producer-consumer vertical fusion over the memory IR (``repro.opt.fuse``).

Short-circuiting (paper section V) removes *copies* and memory reuse
removes *allocations*, but every producer/consumer ``map`` pair still
materializes its intermediate array and pays a full write+read round trip
through global memory.  This pass fuses a ``map`` producer into its
consumers by *recomputation*: every consumer read ``inter[e1, .., eR]``
is replaced with an inlined, renamed copy of the producer's body
evaluated at thread indices ``(e1, .., eR)``, after which the
intermediate's binding is deleted and its ``alloc`` becomes dead (swept
by the existing dead-allocation pass).

Scope (generalized from the original rank-1, single-consumer pass):

* *mapnest producers* -- the producer may be a perfect rank-N ``map``
  nest whose innermost per-thread value is a scalar.  Interior levels
  may carry pure scalar prologue statements; the per-level bodies are
  pure scalar code (including scalar ``if``s and scalar-carried
  ``loop``s -- no allocations, no further parallelism beyond the nest
  itself).  A consumer read composes through the intermediate's
  multi-dimensional LMAD: per-dimension range proofs establish coverage
  and a *tiered* injectivity check (structural test, then relation
  emptiness through :class:`repro.isl.PolyEngine`) establishes that the
  layout stores each logical cell at a distinct offset.
* *multi-consumer producers* -- when the producer body is cheap
  (``DUP_COST_LIMIT`` statements), it is duplicated into every consumer
  read site.  One record per consumer documents the duplication
  (``duplicated=True`` on all but the primary) so the executor's
  accounting never double-counts the elided write.
* *producer chains* -- the pass iterates to a fixpoint, so A fused into
  B makes B a candidate producer for C on the next round.  The chain
  depth is recorded (``chain_depth``) and bounded (``MAX_CHAIN_DEPTH``);
  a producer name committed once can never recur (SSA), but a defensive
  cycle guard rejects it outright if synthetic IR ever re-presents one.

Legality (every failed condition keeps the pair unfused -- the failure
mode is extra traffic, never incorrectness):

1. *consumed only by maps* -- every use of the intermediate is a later
   ``map`` of the same block, and the intermediate appears in the final
   consumer's ``last_uses`` annotation (:mod:`repro.ir.lastuse`);
2. *no escaping alias* -- the alias closure of the intermediate is just
   itself (:mod:`repro.ir.alias`) up to bindings interior to the
   producer nest, it is not a block result, and no binding outside the
   nest references its memory block;
3. *covered, invertible reads* -- every use inside a consumer is a
   full-rank ``Index``; per-dimension range proofs ``0 <= e_d <
   shape_d`` (:class:`repro.symbolic.Prover` under the enclosing
   ``map``/``loop`` index ranges) show the offsets read are covered by
   the producer's write set, and for rank >= 2 the intermediate's LMAD
   must be injective (structural test with polyhedral fallback via
   :meth:`repro.lmad.ProverPool.injective`) so the covered cell holds
   the producer's value for exactly that iteration;
4. *no reordering hazard* -- per consumer, no statement between producer
   and that consumer writes a memory block the producer body reads
   (earlier consumers of a duplicated producer are themselves subject to
   this check), and the memory the fused kernel writes is disjoint from
   what the inlined body reads (checked per block name, with the tiered
   LMAD non-overlap test resolving same-block collisions that
   short-circuiting's rebases can create);
5. *no capture* -- inlining must not bring a producer free variable
   under a consumer-local rebinding (never fires with the builder's
   program-wide unique names; kept as a safety net for synthetic IR);
6. *bounded recomputation* -- duplicating into k > 1 consumers requires
   the nest body to stay under ``DUP_COST_LIMIT`` statements, and chain
   fusion stops at ``MAX_CHAIN_DEPTH``.

Each committed fusion attaches one :class:`repro.ir.ast.FusedRecord` per
consumer; the executor turns those into ``fused_kernels`` /
``bytes_elided_fusion`` accounting (a duplicated record claims only its
own elided read, never the write), the pseudo-CUDA backend into a
provenance comment, and the verifier's FU rules into translation
validation -- FU03 cross-checks the per-site body hashes recorded here.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.lmad import Lmad, ProverPool, lmad
from repro.symbolic import Context, Prover, SymExpr, sym

from repro.ir import ast as A
from repro.ir.alias import AliasInfo
from repro.ir.lastuse import analyze_last_uses
from repro.ir.types import ArrayType, DTYPE_INFO, ScalarType
from repro.mem.memir import MemBinding, array_bindings, binding_of, iter_stmts

#: Maximum statement count (recursive) of a producer body that may be
#: *duplicated* into more than one consumer.  Cheap bodies trade a few
#: recomputed flops for a full round trip per consumer; expensive ones
#: are rejected with ``dup-too-costly``.
DUP_COST_LIMIT = 16

#: Maximum ``chain_depth`` a committed fusion may reach: A->B->C->D is
#: depth 3.  Beyond this the inlined body growth outweighs the elided
#: traffic; rejected with ``chain-depth-exceeded``.
MAX_CHAIN_DEPTH = 4


@dataclass(frozen=True)
class FuseFailure:
    """One abandoned fusion candidate, as a structured record.

    ``producer``/``consumer`` complete the dedup key: distinct consumer
    sites of one producer rejected by the same rule are distinct sites.
    """

    rule: str
    location: str
    producer: str = ""
    consumer: str = ""

    def render(self) -> str:
        loc = self.location
        if self.consumer:
            loc = f"{loc} -> {self.consumer}" if loc else self.consumer
        return f"{self.rule} @ {loc}" if loc else self.rule


@dataclass
class FuseStats:
    """Outcome counters plus per-reason failure tallies."""

    attempted: int = 0
    committed: int = 0
    rounds: int = 0
    #: Consumers beyond the first that received a duplicated body copy.
    duplicated: int = 0
    #: Commits whose record chain depth exceeds 1 (producer chains).
    chained: int = 0
    #: Deciding-tier tallies for this pass's disjointness/injectivity
    #: queries (``structural`` / ``polyhedral`` / ``unknown``).
    tiers: Dict[str, int] = field(default_factory=dict)
    failures: Dict[str, int] = field(default_factory=dict)
    failure_records: List[FuseFailure] = field(default_factory=list)
    #: Re-failures of an already-tallied site (fixpoint rounds re-attempt
    #: every pair), suppressed from the per-rule tallies.
    repeat_failures: int = 0
    #: (intermediate, consumer-names) per committed fusion.
    committed_pairs: List[Tuple[str, Tuple[str, ...]]] = field(
        default_factory=list
    )

    def fail(
        self,
        reason: str,
        location: str = "",
        producer: str = "",
        consumer: str = "",
    ) -> None:
        # One site, one tally: a (producer, consumer) pair rejected again
        # on a later fixpoint round counts only under the rule that first
        # decided it.  The consumer is part of the key so two consumers
        # of one producer rejected by the same rule tally separately.
        if location and any(
            r.location == location
            and r.producer == producer
            and r.consumer == consumer
            for r in self.failure_records
        ):
            self.repeat_failures += 1
            return
        self.failures[reason] = self.failures.get(reason, 0) + 1
        self.failure_records.append(
            FuseFailure(reason, location, producer, consumer)
        )

    def summary(self) -> str:
        lines = [
            f"fusions attempted : {self.attempted}",
            f"fusions committed : {self.committed}",
            f"fixpoint rounds   : {self.rounds}",
        ]
        if self.duplicated:
            lines.append(f"duplicated bodies : {self.duplicated}")
        if self.chained:
            lines.append(f"chain fusions     : {self.chained}")
        for tier, count in sorted(self.tiers.items()):
            if count:
                lines.append(f"  tier ({tier}): {count}")
        for reason, count in sorted(self.failures.items()):
            lines.append(f"  failed ({reason}): {count}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Purity / traversal helpers
# ----------------------------------------------------------------------
_SCALAR_EXPS = (A.Lit, A.ScalarE, A.BinOp, A.UnOp, A.Index, A.VarRef)


def _pure_scalar_stmt(stmt: A.Let) -> bool:
    """Statement binds only scalars via side-effect-free scalar code.

    Scalar ``if``s and scalar-carried ``loop``s qualify: both are plain
    sequential code once inlined into a consumer thread (the native and
    vectorized tiers already lower them inside kernel bodies).
    """
    if any(pe.is_array() for pe in stmt.pattern):
        return False
    exp = stmt.exp
    if isinstance(exp, _SCALAR_EXPS):
        return True
    if isinstance(exp, A.If):
        return all(
            _pure_scalar_stmt(s)
            for blk in (exp.then_block, exp.else_block)
            for s in blk.stmts
        )
    if isinstance(exp, A.Loop):
        return not any(
            isinstance(p.type, ArrayType) for p, _ in exp.carried
        ) and all(_pure_scalar_stmt(s) for s in exp.body.stmts)
    return False


def _bound_names(stmts: Iterable[A.Let]) -> Set[str]:
    """All names bound by ``stmts``, including inside compound bodies."""
    out: Set[str] = set()
    for s in stmts:
        out |= set(s.names)
        exp = s.exp
        if isinstance(exp, A.Loop):
            out.add(exp.index)
            out |= {p.name for p, _ in exp.carried}
        elif isinstance(exp, A.Map):
            out.update(exp.lam.params)
        for blk in A.sub_blocks(exp):
            out |= _bound_names(blk.stmts)
    return out


def _stmts_recursive(stmts: Iterable[A.Let]):
    for s in stmts:
        yield s
        for blk in A.sub_blocks(s.exp):
            yield from _stmts_recursive(blk.stmts)


def _stmt_cost(stmts: Iterable[A.Let]) -> int:
    """Recursive statement count: the recomputation cost estimate."""
    return sum(1 for _ in _stmts_recursive(stmts))


# ----------------------------------------------------------------------
# Renaming (pure-scalar statements only)
# ----------------------------------------------------------------------
def _ren_sym(e: SymExpr, mapping: Dict[str, str]) -> SymExpr:
    hit = {v: SymExpr.var(mapping[v]) for v in e.free_vars() if v in mapping}
    return e.substitute(hit) if hit else e


def _ren_op(op: A.Operand, mapping: Dict[str, str]) -> A.Operand:
    if isinstance(op, str):
        return mapping.get(op, op)
    if isinstance(op, SymExpr):
        return _ren_sym(op, mapping)
    return op


def _ren_exp(exp: A.Exp, mapping: Dict[str, str]) -> A.Exp:
    if isinstance(exp, A.Lit):
        return exp
    if isinstance(exp, A.ScalarE):
        return A.ScalarE(_ren_sym(exp.expr, mapping))
    if isinstance(exp, A.BinOp):
        return A.BinOp(exp.op, _ren_op(exp.x, mapping), _ren_op(exp.y, mapping))
    if isinstance(exp, A.UnOp):
        return A.UnOp(exp.op, _ren_op(exp.x, mapping))
    if isinstance(exp, A.VarRef):
        return A.VarRef(mapping.get(exp.name, exp.name))
    if isinstance(exp, A.Index):
        return A.Index(
            mapping.get(exp.src, exp.src),
            tuple(_ren_sym(i, mapping) for i in exp.indices),
        )
    if isinstance(exp, A.Loop):
        return A.Loop(
            tuple(
                (
                    A.Param(mapping.get(p.name, p.name), p.type),
                    _ren_op(init, mapping),
                )
                for p, init in exp.carried
            ),
            mapping.get(exp.index, exp.index),
            _ren_sym(exp.count, mapping),
            _ren_block(exp.body, mapping),
        )
    assert isinstance(exp, A.If)
    return A.If(
        _ren_op(exp.cond, mapping),
        _ren_block(exp.then_block, mapping),
        _ren_block(exp.else_block, mapping),
    )


def _ren_block(block: A.Block, mapping: Dict[str, str]) -> A.Block:
    return A.Block(
        _ren_stmts(block.stmts, mapping),
        tuple(mapping.get(r, r) for r in block.result),
    )


def _ren_stmts(stmts: List[A.Let], mapping: Dict[str, str]) -> List[A.Let]:
    out: List[A.Let] = []
    for s in stmts:
        pattern = [
            A.PatElem(mapping.get(pe.name, pe.name), pe.type, None)
            for pe in s.pattern
        ]
        out.append(A.Let(pattern, _ren_exp(s.exp, mapping)))
    return out


# ----------------------------------------------------------------------
# Canonical body hashing (FU03 evidence)
# ----------------------------------------------------------------------
def _canon_hash(stmts: List[A.Let], seed: Dict[str, str]) -> str:
    """Alpha-normalized hash of actually-spliced producer statements.

    Every bound name is renamed to a positional placeholder (``seed``
    pre-maps the nest's thread-index names so they normalize identically
    at every site); free names are kept.  Two splices of the same
    producer body must hash identically -- rule FU03's obligation.
    """
    mapping = dict(seed)
    counter = [0]

    def intern(name: str) -> None:
        if name not in mapping:
            mapping[name] = f"%{counter[0]}"
            counter[0] += 1

    def collect(ss: Iterable[A.Let]) -> None:
        for s in ss:
            for pe in s.pattern:
                intern(pe.name)
            exp = s.exp
            if isinstance(exp, A.Loop):
                intern(exp.index)
                for p, _ in exp.carried:
                    intern(p.name)
            for blk in A.sub_blocks(exp):
                collect(blk.stmts)

    collect(stmts)
    dump = _dump_stmts(_ren_stmts(stmts, mapping))
    return hashlib.sha1(dump.encode()).hexdigest()[:16]


def _dump_op(op: A.Operand) -> str:
    if isinstance(op, SymExpr):
        return f"${op}"
    return str(op)


def _dump_exp(exp: A.Exp) -> str:
    if isinstance(exp, A.Lit):
        return f"lit({exp.value!r}:{exp.dtype})"
    if isinstance(exp, A.ScalarE):
        return f"sym({exp.expr})"
    if isinstance(exp, A.BinOp):
        return f"({_dump_op(exp.x)} {exp.op} {_dump_op(exp.y)})"
    if isinstance(exp, A.UnOp):
        return f"{exp.op}({_dump_op(exp.x)})"
    if isinstance(exp, A.VarRef):
        return f"ref({exp.name})"
    if isinstance(exp, A.Index):
        return f"{exp.src}[{', '.join(str(i) for i in exp.indices)}]"
    if isinstance(exp, A.Loop):
        carried = ", ".join(
            f"{p.name}={_dump_op(init)}" for p, init in exp.carried
        )
        return (
            f"loop({carried}; {exp.index} < {exp.count})"
            f"{{{_dump_block(exp.body)}}}"
        )
    assert isinstance(exp, A.If)
    return (
        f"if({_dump_op(exp.cond)}){{{_dump_block(exp.then_block)}}}"
        f"else{{{_dump_block(exp.else_block)}}}"
    )


def _dump_block(block: A.Block) -> str:
    body = _dump_stmts(block.stmts)
    return f"{body} -> ({', '.join(block.result)})"


def _dump_stmts(stmts: List[A.Let]) -> str:
    return "; ".join(
        f"{', '.join(s.names)} = {_dump_exp(s.exp)}" for s in stmts
    )


# ----------------------------------------------------------------------
# A decomposed producer mapnest
# ----------------------------------------------------------------------
@dataclass
class _NestLevel:
    index: str  # the level's thread-index variable
    width: SymExpr
    stmts: List[A.Let]  # pure-scalar statements of this level


@dataclass
class _Nest:
    levels: List[_NestLevel]  # outermost first
    result: str  # innermost body result (a scalar)
    cost: int  # recursive statement count (recompute estimate)

    @property
    def rank(self) -> int:
        return len(self.levels)

    @property
    def total_width(self) -> SymExpr:
        w = self.levels[0].width
        for lvl in self.levels[1:]:
            w = w * lvl.width
        return w


# ----------------------------------------------------------------------
# A consumer read site of the intermediate
# ----------------------------------------------------------------------
@dataclass
class _ReadSite:
    block: A.Block
    index: int  # position of the Index statement in block.stmts
    stmt: A.Let
    idxs: Tuple[SymExpr, ...]  # full-rank read indices
    #: Index ranges of compound statements between the consumer's lambda
    #: and this site, innermost last: (var, lo, hi) with inclusive hi.
    ranges: List[Tuple[str, SymExpr, SymExpr]]


class _SiteFailure(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# ======================================================================
class _Fuser:
    def __init__(self, fun: A.Fun, max_rounds: int = 10, shared=None):
        self.fun = fun
        self.max_rounds = max_rounds
        #: Per-compilation shared state (duck-typed; see
        #: :class:`repro.pipeline.CompileContext`).  Supplies the shared
        #: root assumption context and the Prover/NonOverlapChecker pool
        #: pre-warmed by short-circuiting; standalone runs fall back to a
        #: private pool so repeated disjointness queries against one
        #: block context still share a memo.
        self.shared = shared
        self._pool = shared.provers if shared is not None else ProverPool()
        self.stats = FuseStats()
        self.aliases: Optional[AliasInfo] = None
        self.bindings: Dict[str, MemBinding] = {}
        self.allocated: Set[str] = set()
        self._suffix = 0
        #: Producer names already fused away.  With program-wide unique
        #: names a deleted producer cannot recur; the guard protects the
        #: fixpoint loop against synthetic IR that re-presents one.
        self._fused_away: Set[str] = set()

    def _root_context(self) -> Context:
        if self.shared is not None:
            return self.shared.root_context()
        return self.fun.build_context()

    # ------------------------------------------------------------------
    def run(self) -> FuseStats:
        self._pool.set_client("fuse")
        tier_base = dict(self._pool.tiers.get("fuse", {}))
        for _ in range(self.max_rounds):
            info = analyze_last_uses(self.fun)
            self.aliases = info.aliases
            self.bindings = array_bindings(self.fun)
            self.allocated = {
                s.names[0]
                for s in iter_stmts(self.fun.body)
                if isinstance(s.exp, A.Alloc)
            }
            self.stats.rounds += 1
            if not self._block(self.fun.body, self._root_context(), "body"):
                break
        else:
            analyze_last_uses(self.fun)
        tier_now = self._pool.tiers.get("fuse", {})
        self.stats.tiers = {
            k: tier_now.get(k, 0) - tier_base.get(k, 0)
            for k in set(tier_now) | set(tier_base)
        }
        return self.stats

    # ------------------------------------------------------------------
    # Block walk
    # ------------------------------------------------------------------
    def _block(self, block: A.Block, ctx: Context, path: str) -> bool:
        """Try to commit one fusion in this block or below; True if mutated."""
        self._add_defines(block, ctx)
        for pi, pstmt in enumerate(block.stmts):
            nest = self._decompose_producer(pstmt)
            if nest is None:
                continue
            if self._try_fuse(block, pi, pstmt, nest, ctx, path):
                return True
        for i, stmt in enumerate(block.stmts):
            exp = stmt.exp
            if isinstance(exp, A.Map):
                child = ctx.extended()
                self._assume(child, exp.lam.params[0], exp.width)
                if self._block(exp.lam.body, child, f"{path}[{i}].map"):
                    return True
            elif isinstance(exp, A.Loop):
                child = ctx.extended()
                self._assume(child, exp.index, exp.count)
                if self._block(exp.body, child, f"{path}[{i}].loop"):
                    return True
            elif isinstance(exp, A.If):
                for label, blk in (
                    ("then", exp.then_block),
                    ("else", exp.else_block),
                ):
                    if self._block(blk, ctx.extended(), f"{path}[{i}].{label}"):
                        return True
        return False

    @staticmethod
    def _assume(ctx: Context, var: str, count: SymExpr) -> None:
        ctx.assume_range(var, sym(0), count - 1)

    @staticmethod
    def _add_defines(block: A.Block, ctx: Context) -> None:
        for stmt in block.stmts:
            if isinstance(stmt.exp, A.ScalarE):
                name = stmt.names[0]
                expr = stmt.exp.expr
                if name not in expr.free_vars():
                    try:
                        ctx.define(name, expr)
                    except ValueError:
                        pass

    # ------------------------------------------------------------------
    # Candidate recognition: perfect mapnests of pure scalar code
    # ------------------------------------------------------------------
    def _decompose_producer(self, stmt: A.Let) -> Optional[_Nest]:
        """Decompose a statement into a fusable producer mapnest.

        A rank-N producer is a perfect nest of N maps: every interior
        level binds exactly one array ``map`` whose result is the level's
        result, everything else in the level being pure scalar code (or
        the inner map's private destination ``alloc``, which vanishes
        with the producer).  The innermost body is pure scalar with a
        scalar result bound inside the nest or equal to a level index.
        """
        exp = stmt.exp
        if not isinstance(exp, A.Map) or len(stmt.pattern) != 1:
            return None
        pe = stmt.pattern[0]
        if not pe.is_array() or pe.mem is None:
            return None
        assert isinstance(pe.type, ArrayType)
        rank = len(pe.type.shape)
        levels: List[_NestLevel] = []
        cur: A.Map = exp
        for d in range(rank):
            body = cur.lam.body
            if len(body.result) != 1:
                return None
            res = body.result[0]
            if d == rank - 1:
                if not all(_pure_scalar_stmt(s) for s in body.stmts):
                    return None
                levels.append(
                    _NestLevel(cur.lam.params[0], cur.width, list(body.stmts))
                )
                all_stmts = [s for lvl in levels for s in lvl.stmts]
                idx_vars = {lvl.index for lvl in levels}
                if res not in _bound_names(all_stmts) and res not in idx_vars:
                    return None  # result is a nest-free scalar: no binder
                cost = _stmt_cost(all_stmts)
                return _Nest(levels, res, cost)
            # Interior level: exactly one inner array map binding ``res``.
            inner: Optional[A.Let] = None
            keep: List[A.Let] = []
            allocs: List[str] = []
            for s in body.stmts:
                if (
                    isinstance(s.exp, A.Map)
                    and len(s.pattern) == 1
                    and s.pattern[0].is_array()
                    and s.names[0] == res
                ):
                    if inner is not None:
                        return None
                    inner = s
                    continue
                if isinstance(s.exp, A.Alloc):
                    allocs.append(s.names[0])
                    continue
                if not _pure_scalar_stmt(s):
                    return None
                keep.append(s)
            if inner is None:
                return None
            ipe = inner.pattern[0]
            if ipe.mem is None or not isinstance(ipe.type, ArrayType):
                return None
            if len(ipe.type.shape) != rank - d - 1:
                return None
            # The inner result may only flow out as the level's result.
            if any(res in A.exp_uses(s.exp) for s in keep):
                return None
            # Level-private allocs must serve only the inner map's
            # destination (the pre-short-circuit per-thread buffer).
            imem = binding_of(ipe).mem
            if any(al != imem for al in allocs):
                return None
            levels.append(
                _NestLevel(cur.lam.params[0], cur.width, keep)
            )
            assert isinstance(inner.exp, A.Map)
            cur = inner.exp
        return None  # rank 0: unreachable (arrays have rank >= 1)

    def _interior_names(self, pstmt: A.Let) -> Set[str]:
        """Names bound anywhere inside the producer nest (they are
        deleted along with it, so sharing/aliasing with them is moot)."""
        exp = pstmt.exp
        out: Set[str] = set()
        assert isinstance(exp, A.Map)
        out.update(exp.lam.params)
        out |= _bound_names(exp.lam.body.stmts)
        return out

    # ------------------------------------------------------------------
    # One fusion attempt
    # ------------------------------------------------------------------
    def _try_fuse(
        self,
        block: A.Block,
        pi: int,
        pstmt: A.Let,
        nest: _Nest,
        ctx: Context,
        path: str,
    ) -> bool:
        inter = pstmt.names[0]
        pexp = pstmt.exp
        assert isinstance(pexp, A.Map)
        loc = f"{path}[{pi}]: {inter}"
        self.stats.attempted += 1

        # -- cycle guard (defensive; SSA makes this unreachable) --------
        if inter in self._fused_away:
            self.stats.fail("cycle-guard", loc, producer=inter)
            return False

        # -- condition 2a: the intermediate must not leave the block ----
        if inter in block.result:
            self.stats.fail("escapes-block-result", loc, producer=inter)
            return False
        assert self.aliases is not None
        interior = self._interior_names(pstmt)
        if self.aliases.closure(inter) - interior != frozenset({inter}):
            self.stats.fail("alias-escapes", loc, producer=inter)
            return False

        # -- condition 1: every consuming statement is a later map ------
        consumers = [
            (ci, s)
            for ci, s in enumerate(block.stmts[pi + 1 :], start=pi + 1)
            if inter in A.exp_uses(s.exp)
        ]
        if not consumers:
            self.stats.fail("no-consumer", loc, producer=inter)
            return False
        for ci, cstmt in consumers:
            if not isinstance(cstmt.exp, A.Map):
                rule = (
                    "consumer-not-map" if len(consumers) == 1 else "multi-use"
                )
                self.stats.fail(
                    rule, loc, producer=inter, consumer=cstmt.names[0]
                )
                return False
        last_ci, last_consumer = consumers[-1]
        if inter not in last_consumer.last_uses:
            self.stats.fail(
                "not-last-use", loc,
                producer=inter, consumer=last_consumer.names[0],
            )
            return False

        # -- condition 6: duplication cost + chain depth bounds ---------
        if len(consumers) > 1 and nest.cost > DUP_COST_LIMIT:
            self.stats.fail("dup-too-costly", loc, producer=inter)
            return False
        chain_depth = 1 + max(
            (r.chain_depth for r in pstmt.fused), default=0
        )
        if chain_depth > MAX_CHAIN_DEPTH:
            self.stats.fail("chain-depth-exceeded", loc, producer=inter)
            return False

        # -- condition 2b: the memory block is exclusively the inter's --
        pmem = binding_of(pstmt.pattern[0]).mem
        sharers = {n for n, b in self.bindings.items() if b.mem == pmem}
        if pmem not in self.allocated or sharers - interior != {inter}:
            self.stats.fail("mem-shared", loc, producer=inter)
            return False

        # -- condition 3 (layout): the intermediate's LMAD must store
        #    each logical cell at its own offset.  Rank 1 exclusive fresh
        #    allocations are contiguous by construction; for rank >= 2
        #    the tiered injectivity check covers exotic layouts.
        if nest.rank >= 2:
            lmad = self.bindings[inter].ixfn.as_single()
            if lmad is None:
                self.stats.fail("non-invertible-layout", loc, producer=inter)
                return False
            if not self._pool.injective(ctx, lmad):
                self.stats.fail("non-injective-layout", loc, producer=inter)
                return False

        # -- per-consumer hazard, capture and coverage checks -----------
        read_mems = self._read_mems(nest)
        all_sites: List[Tuple[A.Let, List[_ReadSite]]] = []
        pfree = A.exp_uses(pexp) | pexp.width.free_vars()
        for lvl in nest.levels:
            pfree |= lvl.width.free_vars()
        for ci, cstmt in consumers:
            cname = cstmt.names[0]
            cexp = cstmt.exp
            assert isinstance(cexp, A.Map)

            # condition 4a: no intervening write to producer inputs
            # (earlier consumers of a duplicated producer count: their
            # destination writes must not feed the recomputed body).
            hazard = False
            for mid in block.stmts[pi + 1 : ci]:
                if self._written_mems(mid) & (read_mems | {pmem}):
                    self.stats.fail(
                        "intervening-write", loc,
                        producer=inter, consumer=cname,
                    )
                    hazard = True
                    break
            if hazard:
                return False

            # condition 4b: fused kernel's writes vs inlined reads
            dest_mems = {
                binding_of(pe).mem
                for pe in cstmt.pattern
                if pe.is_array() and pe.mem is not None
            }
            cons_writes = dest_mems | self._written_mems(cstmt)
            collisions = cons_writes & read_mems
            if collisions and not self._proves_disjoint(
                ctx, cstmt, collisions, nest
            ):
                self.stats.fail(
                    "consumer-overwrites-input", loc,
                    producer=inter, consumer=cname,
                )
                return False

            # condition 5: capture-free inlining
            if pfree & _bound_names(cexp.lam.body.stmts):
                self.stats.fail(
                    "shadowed-free-var", loc,
                    producer=inter, consumer=cname,
                )
                return False

            # condition 3: collect read sites + coverage proofs
            try:
                sites = self._collect_sites(cexp, inter, ctx, nest)
            except _SiteFailure as f:
                self.stats.fail(
                    f.reason, loc, producer=inter, consumer=cname
                )
                return False
            all_sites.append((cstmt, sites))

        # ---------------------------------------------------------------
        # Commit: inline at every read site of every consumer, delete the
        # producer.  Sites sharing a block are spliced back-to-front so
        # that the splice at one site (1 stmt -> k stmts) does not shift
        # the recorded index of an earlier site in the same list.
        # ---------------------------------------------------------------
        pe = pstmt.pattern[0]
        assert isinstance(pe.type, ArrayType)
        elem_bytes = DTYPE_INFO[pe.type.dtype][1]
        for k, (cstmt, sites) in enumerate(all_sites):
            hashes: List[str] = []
            for site in sorted(sites, key=lambda s: s.index, reverse=True):
                hashes.append(self._inline_site(site, nest))
            hashes.reverse()
            dest_mems = {
                binding_of(cpe).mem
                for cpe in cstmt.pattern
                if cpe.is_array() and cpe.mem is not None
            }
            rec = A.FusedRecord(
                producer=inter,
                mem=pmem,
                width=nest.total_width,
                elem_bytes=elem_bytes,
                reads=len(sites),
                write_mems=tuple(sorted(dest_mems | {pmem})),
                rank=nest.rank,
                duplicated=k > 0,
                recompute_stmts=nest.cost,
                chain_depth=chain_depth,
                site_hashes=tuple(hashes),
            )
            if k == 0:
                # A chained producer hands its own provenance down: the
                # records describing what was fused *into it* now live on
                # the (primary) consumer that absorbed its body.
                cstmt.fused = cstmt.fused + pstmt.fused + (rec,)
            else:
                cstmt.fused = cstmt.fused + (rec,)
        del block.stmts[pi]  # splices happened inside the consumers' lambdas
        self._fused_away.add(inter)
        self.stats.committed += 1
        self.stats.duplicated += len(all_sites) - 1
        if chain_depth > 1:
            self.stats.chained += 1
        names: Tuple[str, ...] = ()
        for cstmt, _ in all_sites:
            names = names + cstmt.names
        self.stats.committed_pairs.append((inter, names))
        return True

    # ------------------------------------------------------------------
    def _read_mems(self, nest: _Nest) -> Set[str]:
        """Memory blocks the (pure scalar) producer body reads."""
        out: Set[str] = set()
        for lvl in nest.levels:
            for stmt in _stmts_recursive(lvl.stmts):
                if isinstance(stmt.exp, A.Index):
                    b = self.bindings.get(stmt.exp.src)
                    if b is not None:
                        out.add(b.mem)
        return out

    def _written_mems(self, stmt: A.Let) -> Set[str]:
        """Memory blocks a statement (incl. nested code) may write."""
        out: Set[str] = set()
        writing = (
            A.Copy, A.Concat, A.Iota, A.Replicate, A.Update, A.Map,
        )

        def of(s: A.Let) -> None:
            if isinstance(s.exp, writing):
                for pe in s.pattern:
                    if pe.is_array() and pe.mem is not None:
                        out.add(binding_of(pe).mem)
            for blk in A.sub_blocks(s.exp):
                for sub in blk.stmts:
                    of(sub)

        of(stmt)
        return out

    def _proves_disjoint(
        self,
        ctx: Context,
        consumer: A.Let,
        collisions: Set[str],
        nest: _Nest,
    ) -> bool:
        """Same block written and read: prove region disjointness.

        Short-circuiting legitimately creates distinct arrays sharing a
        block; when the fused kernel writes such a block and the inlined
        producer body reads it, the LMAD non-overlap test must separate
        the two regions, else the interleaved execution could observe a
        consumer write the original producer ran before.

        Each read is narrowed to its *footprint* first: the read's index
        expressions are composed through the source binding's LMAD into
        a flat offset, and every enclosing iteration variable (nest
        level or interior loop index) appearing affinely becomes a
        footprint dimension ``(trip count : coefficient)``.  That is
        what lets a producer read a strip of the very array the fused
        kernel updates (LUD's panel reads against the interior write
        region).  When extraction fails (multi-LMAD view, rank mismatch,
        non-affine index) the binding's whole region stands in.
        """
        prover, checker = self._pool.pair_for(ctx)
        writes = []
        for pe in consumer.pattern:
            if pe.is_array() and pe.mem is not None:
                b = binding_of(pe)
                if b.mem in collisions:
                    writes.append(b)
        reads = self._colliding_reads(nest, collisions)
        if not writes or not reads:
            return False  # a nested write collided: too coarse, give up
        for w in writes:
            wl = w.ixfn.as_single()
            if wl is None:
                return False
            for b, idxs, ranges in reads:
                rl = self._read_footprint(b, idxs, ranges)
                if rl is None:
                    rl = b.ixfn.as_single()
                if rl is None or not checker.check(wl, rl):
                    return False
        return True

    def _colliding_reads(
        self, nest: _Nest, collisions: Set[str]
    ) -> List[Tuple[MemBinding, Tuple[SymExpr, ...], List[Tuple[str, SymExpr]]]]:
        """Producer-body reads of colliding blocks, each with the
        iteration variables in scope at the read and their trip counts
        (outermost first)."""
        out: List[
            Tuple[MemBinding, Tuple[SymExpr, ...], List[Tuple[str, SymExpr]]]
        ] = []

        def walk(stmts: Iterable[A.Let], ranges) -> None:
            for s in stmts:
                exp = s.exp
                if isinstance(exp, A.Index):
                    b = self.bindings.get(exp.src)
                    if b is not None and b.mem in collisions:
                        out.append((b, tuple(exp.indices), list(ranges)))
                    continue
                extra = list(ranges)
                if isinstance(exp, A.Loop):
                    extra.append((exp.index, exp.count))
                elif isinstance(exp, A.Map):
                    extra.append((exp.lam.params[0], exp.width))
                for blk in A.sub_blocks(exp):
                    walk(blk.stmts, extra)

        prefix: List[Tuple[str, SymExpr]] = []
        for lvl in nest.levels:
            prefix.append((lvl.index, lvl.width))
            walk(lvl.stmts, list(prefix))
        return out

    def _read_footprint(
        self,
        b: MemBinding,
        idxs: Tuple[SymExpr, ...],
        ranges: List[Tuple[str, SymExpr]],
    ) -> Optional[Lmad]:
        """The set of offsets one read touches over its iteration space,
        as an LMAD -- or ``None`` when it is not affine in the iteration
        variables."""
        rl = b.ixfn.as_single()
        if rl is None or len(idxs) != len(rl.dims):
            return None
        off = rl.offset
        for e, dim in zip(idxs, rl.dims):
            off = off + sym(e) * dim.stride
        ranged = {v for v, _ in ranges}
        dims: List[Tuple[SymExpr, SymExpr]] = []
        for var, count in ranges:
            if off.degree_in(var) > 1:
                return None
            coef = off.coefficients_in(var).get(1)
            if coef is None:
                continue
            if coef.free_vars() & ranged:
                return None  # iteration-dependent stride: not an LMAD
            dims.append((count, coef))
            off = off - SymExpr.var(var) * coef
        if off.free_vars() & ranged:
            return None
        if not dims:
            dims = [(sym(1), sym(1))]  # a single cell
        return lmad(off, dims)

    # ------------------------------------------------------------------
    def _collect_sites(
        self, cexp: A.Map, inter: str, ctx: Context, nest: _Nest
    ) -> List[_ReadSite]:
        """Find every read of ``inter`` in the consumer; prove coverage."""
        sites: List[_ReadSite] = []
        width = cexp.width
        base: List[Tuple[str, SymExpr, SymExpr]] = [
            (cexp.lam.params[0], sym(0), width - 1)
        ]

        def walk(block: A.Block, ranges) -> None:
            if inter in block.result:
                raise _SiteFailure("non-index-use")
            for i, stmt in enumerate(block.stmts):
                exp = stmt.exp
                if isinstance(exp, A.Index) and exp.src == inter:
                    if len(exp.indices) != nest.rank:
                        raise _SiteFailure("non-scalar-read")
                    sites.append(
                        _ReadSite(
                            block, i, stmt, tuple(exp.indices), list(ranges)
                        )
                    )
                    continue
                sub = A.sub_blocks(exp)
                if not sub:
                    if inter in A.exp_uses(exp):
                        raise _SiteFailure("non-index-use")
                    continue
                # Direct (non-body) operands of compound statements.
                direct: Set[str] = set()
                if isinstance(exp, A.Loop):
                    direct |= {init for _, init in exp.carried}
                    direct |= exp.count.free_vars()
                elif isinstance(exp, A.Map):
                    direct |= exp.width.free_vars()
                elif isinstance(exp, A.If):
                    direct |= A.operand_vars(exp.cond)
                if inter in direct:
                    raise _SiteFailure("non-index-use")
                extra = list(ranges)
                if isinstance(exp, A.Loop):
                    extra.append((exp.index, sym(0), exp.count - 1))
                elif isinstance(exp, A.Map):
                    extra.append(
                        (exp.lam.params[0], sym(0), exp.width - 1)
                    )
                for blk in sub:
                    walk(blk, extra)

        walk(cexp.lam.body, base)
        if not sites:
            raise _SiteFailure("non-index-use")

        # Coverage: the producer writes every logical cell of its result
        # shape, so a read ``inter[e_1, .., e_R]`` is covered iff every
        # index is in range: 0 <= e_d < shape_d under the enclosing index
        # ranges.  Together with the injectivity obligation (checked once
        # per attempt for rank >= 2), the cell read holds exactly the
        # producer's value for iteration (e_1, .., e_R).
        shape = [lvl.width for lvl in nest.levels]
        for site in sites:
            sctx = ctx.extended()
            for var, lo, hi in site.ranges:
                sctx.assume_range(var, lo, hi)
            prover = Prover(sctx)
            for e, dim in zip(site.idxs, shape):
                if not (prover.nonneg(e) and prover.nonneg(dim - 1 - e)):
                    raise _SiteFailure("read-out-of-range")
        return sites

    # ------------------------------------------------------------------
    def _inline_site(self, site: _ReadSite, nest: _Nest) -> str:
        """Splice a renamed copy of the producer body over one read.

        Returns the canonical body hash recorded in the site's
        :class:`FusedRecord` (rule FU03's per-site evidence).
        """
        self._suffix += 1
        tag = f"__f{self._suffix}"
        vname = site.stmt.names[0]
        vtype = site.stmt.pattern[0].type
        res = nest.result

        bound: Set[str] = set()
        for lvl in nest.levels:
            bound.add(lvl.index)
            bound |= _bound_names(lvl.stmts)
        mapping = {n: f"{n}{tag}" for n in bound}
        idx_vars = {lvl.index for lvl in nest.levels}
        res_is_index = res in idx_vars
        if not res_is_index:
            # The producer's result binding directly becomes the read's
            # bound name; everything else gets a fresh suffix.
            mapping[res] = vname

        new_stmts: List[A.Let] = []
        body_stmts: List[A.Let] = []  # spliced minus index binds (hashed)
        for lvl, e in zip(nest.levels, site.idxs):
            new_stmts.append(
                A.Let(
                    [A.PatElem(mapping[lvl.index], ScalarType("i64"))],
                    A.ScalarE(sym(e)),
                )
            )
            renamed = _ren_stmts(lvl.stmts, mapping)
            new_stmts.extend(renamed)
            body_stmts.extend(renamed)
        if res_is_index:
            # map (i < w) { i }: the value *is* the thread index.
            tail = A.Let(
                [A.PatElem(vname, vtype)],
                A.ScalarE(SymExpr.var(mapping[res])),
            )
            new_stmts.append(tail)
            body_stmts.append(tail)
        site.block.stmts[site.index : site.index + 1] = new_stmts
        seed = {
            mapping[lvl.index]: f"%i{d}"
            for d, lvl in enumerate(nest.levels)
        }
        return _canon_hash(body_stmts, seed)


# ----------------------------------------------------------------------
def fuse_fun(fun: A.Fun, max_rounds: int = 10, shared=None) -> FuseStats:
    """Run producer-consumer fusion to a fixpoint on ``fun`` (in place).

    ``shared`` is the compilation's shared state (see
    :class:`repro.pipeline.CompileContext`): when given, the root
    assumption context and the Prover/NonOverlapChecker memo pool are
    reused across the whole pipeline instead of rebuilt per pass.
    """
    return _Fuser(fun, max_rounds=max_rounds, shared=shared).run()
