"""Producer-consumer vertical fusion over the memory IR (``repro.opt.fuse``).

Short-circuiting (paper section V) removes *copies* and memory reuse
removes *allocations*, but every producer/consumer ``map`` pair still
materializes its intermediate array and pays a full write+read round trip
through global memory.  This pass fuses a ``map`` producer into its sole
consumer by *recomputation*: every consumer read ``inter[e]`` is replaced
with an inlined, renamed copy of the producer's body evaluated at thread
index ``e``, after which the intermediate's binding is deleted and its
``alloc`` becomes dead (swept by the existing dead-allocation pass).

Scope: producers are single-result ``map``s whose per-thread value is a
*scalar* (so the intermediate is rank-1 and the producer body is pure
scalar code -- no allocations, no nested parallelism).  This is exactly
the class short-circuiting never re-homes (its implicit circuit point
skips scalar map results), so producer deletion cannot invalidate an
earlier rebase.  The consumer may be any ``map`` in the same block.

Legality (every failed condition keeps the pair unfused -- the failure
mode is extra traffic, never incorrectness):

1. *single last use* -- the intermediate is consumed by exactly one later
   statement of its block, a ``map``, and appears in that statement's
   ``last_uses`` annotation (:mod:`repro.ir.lastuse`);
2. *no escaping alias* -- the alias closure of the intermediate is just
   itself (:mod:`repro.ir.alias`), it is not a block result, and no other
   array binding references its memory block;
3. *pointwise-compatible reads* -- every use inside the consumer is a
   full-rank ``Index``, and composing the read index with the
   intermediate's (row-major, injective) LMAD shows the offsets the
   consumer thread reads are covered by the producer's write set.  For a
   rank-1 fresh intermediate the composition collapses to the index
   itself, so coverage is the range proof ``0 <= e < width`` discharged
   by :class:`repro.symbolic.Prover` under the ranges of every enclosing
   ``map``/``loop`` index;
4. *no reordering hazard* -- no statement between producer and consumer
   writes a memory block the producer body reads, and the memory the
   fused kernel writes is disjoint from what the inlined body reads
   (checked per block name, with the LMAD non-overlap test of
   :class:`repro.lmad.NonOverlapChecker` resolving same-block collisions
   that short-circuiting's rebases can create);
5. *no capture* -- inlining must not bring a producer free variable under
   a consumer-local rebinding (never fires with the builder's
   program-wide unique names; kept as a safety net for synthetic IR).

Each committed fusion attaches a :class:`repro.ir.ast.FusedRecord` to the
consumer statement; the executor turns those into ``fused_kernels`` /
``bytes_elided_fusion`` accounting, the pseudo-CUDA backend into a
provenance comment, and the verifier's FU rules into translation
validation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lmad import ProverPool
from repro.symbolic import Context, Prover, SymExpr, sym

from repro.ir import ast as A
from repro.ir.alias import AliasInfo
from repro.ir.lastuse import analyze_last_uses
from repro.ir.types import ArrayType, DTYPE_INFO, ScalarType
from repro.mem.memir import MemBinding, array_bindings, binding_of, iter_stmts


@dataclass(frozen=True)
class FuseFailure:
    """One abandoned fusion candidate, as a structured record."""

    rule: str
    location: str

    def render(self) -> str:
        return f"{self.rule} @ {self.location}" if self.location else self.rule


@dataclass
class FuseStats:
    """Outcome counters plus per-reason failure tallies."""

    attempted: int = 0
    committed: int = 0
    rounds: int = 0
    #: Deciding-tier tallies for this pass's disjointness queries
    #: (``structural`` / ``polyhedral`` / ``unknown``), from the pool.
    tiers: Dict[str, int] = field(default_factory=dict)
    failures: Dict[str, int] = field(default_factory=dict)
    failure_records: List[FuseFailure] = field(default_factory=list)
    #: Re-failures of an already-tallied site (fixpoint rounds re-attempt
    #: every pair), suppressed from the per-rule tallies.
    repeat_failures: int = 0
    #: (intermediate, consumer-names) per committed fusion.
    committed_pairs: List[Tuple[str, Tuple[str, ...]]] = field(
        default_factory=list
    )

    def fail(self, reason: str, location: str = "") -> None:
        # One site, one tally: a pair rejected again on a later fixpoint
        # round counts only under the rule that first decided it.
        if location and any(
            r.location == location for r in self.failure_records
        ):
            self.repeat_failures += 1
            return
        self.failures[reason] = self.failures.get(reason, 0) + 1
        self.failure_records.append(FuseFailure(reason, location))

    def summary(self) -> str:
        lines = [
            f"fusions attempted : {self.attempted}",
            f"fusions committed : {self.committed}",
            f"fixpoint rounds   : {self.rounds}",
        ]
        for tier, count in sorted(self.tiers.items()):
            if count:
                lines.append(f"  tier ({tier}): {count}")
        for reason, count in sorted(self.failures.items()):
            lines.append(f"  failed ({reason}): {count}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Purity / traversal helpers
# ----------------------------------------------------------------------
_SCALAR_EXPS = (A.Lit, A.ScalarE, A.BinOp, A.UnOp, A.Index, A.VarRef)


def _pure_scalar_stmt(stmt: A.Let) -> bool:
    """Statement binds only scalars via side-effect-free scalar code."""
    if any(pe.is_array() for pe in stmt.pattern):
        return False
    exp = stmt.exp
    if isinstance(exp, _SCALAR_EXPS):
        return True
    if isinstance(exp, A.If):
        return all(
            _pure_scalar_stmt(s)
            for blk in (exp.then_block, exp.else_block)
            for s in blk.stmts
        )
    return False


def _bound_names(stmts: List[A.Let]) -> Set[str]:
    """All names bound by ``stmts``, including inside ``if`` branches."""
    out: Set[str] = set()
    for s in stmts:
        out |= set(s.names)
        if isinstance(s.exp, A.If):
            out |= _bound_names(s.exp.then_block.stmts)
            out |= _bound_names(s.exp.else_block.stmts)
    return out


# ----------------------------------------------------------------------
# Renaming (pure-scalar statements only)
# ----------------------------------------------------------------------
def _ren_sym(e: SymExpr, mapping: Dict[str, str]) -> SymExpr:
    hit = {v: SymExpr.var(mapping[v]) for v in e.free_vars() if v in mapping}
    return e.substitute(hit) if hit else e


def _ren_op(op: A.Operand, mapping: Dict[str, str]) -> A.Operand:
    if isinstance(op, str):
        return mapping.get(op, op)
    if isinstance(op, SymExpr):
        return _ren_sym(op, mapping)
    return op


def _ren_exp(exp: A.Exp, mapping: Dict[str, str]) -> A.Exp:
    if isinstance(exp, A.Lit):
        return exp
    if isinstance(exp, A.ScalarE):
        return A.ScalarE(_ren_sym(exp.expr, mapping))
    if isinstance(exp, A.BinOp):
        return A.BinOp(exp.op, _ren_op(exp.x, mapping), _ren_op(exp.y, mapping))
    if isinstance(exp, A.UnOp):
        return A.UnOp(exp.op, _ren_op(exp.x, mapping))
    if isinstance(exp, A.VarRef):
        return A.VarRef(mapping.get(exp.name, exp.name))
    if isinstance(exp, A.Index):
        return A.Index(
            mapping.get(exp.src, exp.src),
            tuple(_ren_sym(i, mapping) for i in exp.indices),
        )
    assert isinstance(exp, A.If)
    return A.If(
        _ren_op(exp.cond, mapping),
        _ren_block(exp.then_block, mapping),
        _ren_block(exp.else_block, mapping),
    )


def _ren_block(block: A.Block, mapping: Dict[str, str]) -> A.Block:
    return A.Block(
        _ren_stmts(block.stmts, mapping),
        tuple(mapping.get(r, r) for r in block.result),
    )


def _ren_stmts(stmts: List[A.Let], mapping: Dict[str, str]) -> List[A.Let]:
    out: List[A.Let] = []
    for s in stmts:
        pattern = [
            A.PatElem(mapping.get(pe.name, pe.name), pe.type, None)
            for pe in s.pattern
        ]
        out.append(A.Let(pattern, _ren_exp(s.exp, mapping)))
    return out


# ----------------------------------------------------------------------
# A consumer read site of the intermediate
# ----------------------------------------------------------------------
@dataclass
class _ReadSite:
    block: A.Block
    index: int  # position of the Index statement in block.stmts
    stmt: A.Let
    #: Index ranges of compound statements between the consumer's lambda
    #: and this site, innermost last: (var, lo, hi) with inclusive hi.
    ranges: List[Tuple[str, SymExpr, SymExpr]]


class _SiteFailure(Exception):
    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# ======================================================================
class _Fuser:
    def __init__(self, fun: A.Fun, max_rounds: int = 10, shared=None):
        self.fun = fun
        self.max_rounds = max_rounds
        #: Per-compilation shared state (duck-typed; see
        #: :class:`repro.pipeline.CompileContext`).  Supplies the shared
        #: root assumption context and the Prover/NonOverlapChecker pool
        #: pre-warmed by short-circuiting; standalone runs fall back to a
        #: private pool so repeated disjointness queries against one
        #: block context still share a memo.
        self.shared = shared
        self._pool = shared.provers if shared is not None else ProverPool()
        self.stats = FuseStats()
        self.aliases: Optional[AliasInfo] = None
        self.bindings: Dict[str, MemBinding] = {}
        self.allocated: Set[str] = set()
        self._suffix = 0

    def _root_context(self) -> Context:
        if self.shared is not None:
            return self.shared.root_context()
        return self.fun.build_context()

    # ------------------------------------------------------------------
    def run(self) -> FuseStats:
        self._pool.set_client("fuse")
        tier_base = dict(self._pool.tiers.get("fuse", {}))
        for _ in range(self.max_rounds):
            info = analyze_last_uses(self.fun)
            self.aliases = info.aliases
            self.bindings = array_bindings(self.fun)
            self.allocated = {
                s.names[0]
                for s in iter_stmts(self.fun.body)
                if isinstance(s.exp, A.Alloc)
            }
            self.stats.rounds += 1
            if not self._block(self.fun.body, self._root_context(), "body"):
                break
        else:
            analyze_last_uses(self.fun)
        tier_now = self._pool.tiers.get("fuse", {})
        self.stats.tiers = {
            k: tier_now.get(k, 0) - tier_base.get(k, 0)
            for k in set(tier_now) | set(tier_base)
        }
        return self.stats

    # ------------------------------------------------------------------
    # Block walk
    # ------------------------------------------------------------------
    def _block(self, block: A.Block, ctx: Context, path: str) -> bool:
        """Try to commit one fusion in this block or below; True if mutated."""
        self._add_defines(block, ctx)
        for pi, pstmt in enumerate(block.stmts):
            if not self._is_producer(pstmt):
                continue
            if self._try_fuse(block, pi, pstmt, ctx, path):
                return True
        for i, stmt in enumerate(block.stmts):
            exp = stmt.exp
            if isinstance(exp, A.Map):
                child = ctx.extended()
                self._assume(child, exp.lam.params[0], exp.width)
                if self._block(exp.lam.body, child, f"{path}[{i}].map"):
                    return True
            elif isinstance(exp, A.Loop):
                child = ctx.extended()
                self._assume(child, exp.index, exp.count)
                if self._block(exp.body, child, f"{path}[{i}].loop"):
                    return True
            elif isinstance(exp, A.If):
                for label, blk in (
                    ("then", exp.then_block),
                    ("else", exp.else_block),
                ):
                    if self._block(blk, ctx.extended(), f"{path}[{i}].{label}"):
                        return True
        return False

    @staticmethod
    def _assume(ctx: Context, var: str, count: SymExpr) -> None:
        ctx.assume_range(var, sym(0), count - 1)

    @staticmethod
    def _add_defines(block: A.Block, ctx: Context) -> None:
        for stmt in block.stmts:
            if isinstance(stmt.exp, A.ScalarE):
                name = stmt.names[0]
                expr = stmt.exp.expr
                if name not in expr.free_vars():
                    try:
                        ctx.define(name, expr)
                    except ValueError:
                        pass

    # ------------------------------------------------------------------
    # Candidate recognition
    # ------------------------------------------------------------------
    def _is_producer(self, stmt: A.Let) -> bool:
        exp = stmt.exp
        if not isinstance(exp, A.Map) or len(stmt.pattern) != 1:
            return False
        pe = stmt.pattern[0]
        if not pe.is_array() or pe.mem is None:
            return False
        assert isinstance(pe.type, ArrayType)
        if len(pe.type.shape) != 1:
            return False  # per-thread result is not a scalar
        body = exp.lam.body
        if len(body.result) != 1:
            return False
        return all(_pure_scalar_stmt(s) for s in body.stmts)

    # ------------------------------------------------------------------
    # One fusion attempt
    # ------------------------------------------------------------------
    def _try_fuse(
        self,
        block: A.Block,
        pi: int,
        pstmt: A.Let,
        ctx: Context,
        path: str,
    ) -> bool:
        inter = pstmt.names[0]
        pexp = pstmt.exp
        assert isinstance(pexp, A.Map)
        loc = f"{path}[{pi}]: {inter}"
        self.stats.attempted += 1

        # -- condition 2a: the intermediate must not leave the block ----
        if inter in block.result:
            self.stats.fail("escapes-block-result", loc)
            return False
        assert self.aliases is not None
        if self.aliases.closure(inter) != frozenset({inter}):
            self.stats.fail("alias-escapes", loc)
            return False

        # -- condition 1: exactly one consuming statement, a map --------
        consumers = [
            (ci, s)
            for ci, s in enumerate(block.stmts[pi + 1 :], start=pi + 1)
            if inter in A.exp_uses(s.exp)
        ]
        if not consumers:
            self.stats.fail("no-consumer", loc)
            return False
        if len(consumers) > 1:
            self.stats.fail("multi-use", loc)
            return False
        ci, consumer = consumers[0]
        cexp = consumer.exp
        if not isinstance(cexp, A.Map):
            self.stats.fail("consumer-not-map", loc)
            return False
        if inter not in consumer.last_uses:
            self.stats.fail("not-last-use", loc)
            return False

        # -- condition 2b: the memory block is exclusively the inter's --
        pmem = binding_of(pstmt.pattern[0]).mem
        sharers = {n for n, b in self.bindings.items() if b.mem == pmem}
        if pmem not in self.allocated or sharers != {inter}:
            self.stats.fail("mem-shared", loc)
            return False

        # -- condition 4a: no intervening write to producer inputs ------
        read_mems = self._read_mems(pexp.lam.body)
        for mid in block.stmts[pi + 1 : ci]:
            written = self._written_mems(mid)
            if written & (read_mems | {pmem}):
                self.stats.fail("intervening-write", loc)
                return False

        # -- condition 4b: fused kernel's writes vs inlined reads -------
        dest_mems = {
            binding_of(pe).mem
            for pe in consumer.pattern
            if pe.is_array() and pe.mem is not None
        }
        cons_writes = dest_mems | self._written_mems(consumer)
        collisions = cons_writes & read_mems
        if collisions and not self._proves_disjoint(
            ctx, consumer, collisions, pexp.lam.body
        ):
            self.stats.fail("consumer-overwrites-input", loc)
            return False

        # -- condition 5: capture-free inlining -------------------------
        pfree = A.exp_uses(pexp) | pexp.width.free_vars()
        if pfree & _bound_names(cexp.lam.body.stmts):
            self.stats.fail("shadowed-free-var", loc)
            return False

        # -- condition 3: collect read sites + coverage proofs ----------
        try:
            sites = self._collect_sites(cexp, inter, ctx)
        except _SiteFailure as f:
            self.stats.fail(f.reason, loc)
            return False

        # ---------------------------------------------------------------
        # Commit: inline at every read site, delete the producer.  Sites
        # sharing a block are spliced back-to-front so that the splice at
        # one site (1 stmt -> k stmts) does not shift the recorded index
        # of an earlier site in the same statement list.
        # ---------------------------------------------------------------
        for site in sorted(sites, key=lambda s: s.index, reverse=True):
            self._inline_site(site, pstmt, pexp)
        del block.stmts[pi]  # splices happened inside the consumer's lambda
        pe = pstmt.pattern[0]
        assert isinstance(pe.type, ArrayType)
        consumer.fused = consumer.fused + (
            A.FusedRecord(
                producer=inter,
                mem=pmem,
                width=pexp.width,
                elem_bytes=DTYPE_INFO[pe.type.dtype][1],
                reads=len(sites),
                write_mems=tuple(sorted(dest_mems | {pmem})),
            ),
        )
        self.stats.committed += 1
        self.stats.committed_pairs.append((inter, consumer.names))
        return True

    # ------------------------------------------------------------------
    def _read_mems(self, body: A.Block) -> Set[str]:
        """Memory blocks the (pure scalar) producer body reads."""
        out: Set[str] = set()
        for stmt in iter_stmts(body):
            if isinstance(stmt.exp, A.Index):
                b = self.bindings.get(stmt.exp.src)
                if b is not None:
                    out.add(b.mem)
        return out

    def _written_mems(self, stmt: A.Let) -> Set[str]:
        """Memory blocks a statement (incl. nested code) may write."""
        out: Set[str] = set()
        writing = (
            A.Copy, A.Concat, A.Iota, A.Replicate, A.Update, A.Map,
        )

        def of(s: A.Let) -> None:
            if isinstance(s.exp, writing):
                for pe in s.pattern:
                    if pe.is_array() and pe.mem is not None:
                        out.add(binding_of(pe).mem)
            for blk in A.sub_blocks(s.exp):
                for sub in blk.stmts:
                    of(sub)

        of(stmt)
        return out

    def _proves_disjoint(
        self,
        ctx: Context,
        consumer: A.Let,
        collisions: Set[str],
        pbody: A.Block,
    ) -> bool:
        """Same block written and read: prove region disjointness.

        Short-circuiting legitimately creates distinct arrays sharing a
        block; when the fused kernel writes such a block and the inlined
        producer body reads it, the LMAD non-overlap test must separate
        the two regions, else the interleaved execution could observe a
        consumer write the original producer ran before.
        """
        prover, checker = self._pool.pair_for(ctx)
        writes = []
        for pe in consumer.pattern:
            if pe.is_array() and pe.mem is not None:
                b = binding_of(pe)
                if b.mem in collisions:
                    writes.append(b)
        reads = []
        for stmt in iter_stmts(pbody):
            if isinstance(stmt.exp, A.Index):
                b = self.bindings.get(stmt.exp.src)
                if b is not None and b.mem in collisions:
                    reads.append(b)
        if not writes or not reads:
            return False  # a nested write collided: too coarse, give up
        for w in writes:
            wl = w.ixfn.as_single()
            if wl is None:
                return False
            for r in reads:
                rl = r.ixfn.as_single()
                if rl is None or not checker.check(wl, rl):
                    return False
        return True

    # ------------------------------------------------------------------
    def _collect_sites(
        self, cexp: A.Map, inter: str, ctx: Context
    ) -> List[_ReadSite]:
        """Find every read of ``inter`` in the consumer; prove coverage."""
        sites: List[_ReadSite] = []
        width = cexp.width
        base: List[Tuple[str, SymExpr, SymExpr]] = [
            (cexp.lam.params[0], sym(0), width - 1)
        ]

        def walk(block: A.Block, ranges) -> None:
            if inter in block.result:
                raise _SiteFailure("non-index-use")
            for i, stmt in enumerate(block.stmts):
                exp = stmt.exp
                if isinstance(exp, A.Index) and exp.src == inter:
                    if len(exp.indices) != 1:
                        raise _SiteFailure("non-scalar-read")
                    sites.append(_ReadSite(block, i, stmt, list(ranges)))
                    continue
                sub = A.sub_blocks(exp)
                if not sub:
                    if inter in A.exp_uses(exp):
                        raise _SiteFailure("non-index-use")
                    continue
                # Direct (non-body) operands of compound statements.
                direct: Set[str] = set()
                if isinstance(exp, A.Loop):
                    direct |= {init for _, init in exp.carried}
                    direct |= exp.count.free_vars()
                elif isinstance(exp, A.Map):
                    direct |= exp.width.free_vars()
                elif isinstance(exp, A.If):
                    direct |= A.operand_vars(exp.cond)
                if inter in direct:
                    raise _SiteFailure("non-index-use")
                extra = list(ranges)
                if isinstance(exp, A.Loop):
                    extra.append((exp.index, sym(0), exp.count - 1))
                elif isinstance(exp, A.Map):
                    extra.append(
                        (exp.lam.params[0], sym(0), exp.width - 1)
                    )
                for blk in sub:
                    walk(blk, extra)

        walk(cexp.lam.body, base)
        if not sites:
            raise _SiteFailure("non-index-use")

        # Coverage: compose the read with the intermediate's index
        # function; for the rank-1 fresh array this is the identity on
        # the index, so the producer-write-set coverage obligation is the
        # range proof 0 <= e < width under the enclosing index ranges.
        pwidth = self.bindings[inter].ixfn.shape[0]
        for site in sites:
            sctx = ctx.extended()
            for var, lo, hi in site.ranges:
                sctx.assume_range(var, lo, hi)
            prover = Prover(sctx)
            e = site.stmt.exp.indices[0]
            if not (prover.nonneg(e) and prover.nonneg(pwidth - 1 - e)):
                raise _SiteFailure("read-out-of-range")
        return sites

    # ------------------------------------------------------------------
    def _inline_site(
        self, site: _ReadSite, pstmt: A.Let, pexp: A.Map
    ) -> None:
        """Splice a renamed copy of the producer body over one read."""
        self._suffix += 1
        tag = f"__f{self._suffix}"
        tvar = pexp.lam.params[0]
        body = pexp.lam.body
        res = body.result[0]
        vname = site.stmt.names[0]
        vtype = site.stmt.pattern[0].type

        mapping = {n: f"{n}{tag}" for n in _bound_names(body.stmts)}
        mapping[tvar] = f"{tvar}{tag}"
        if res != tvar:
            # The producer's result binding directly becomes the read's
            # bound name; everything else gets a fresh suffix.
            mapping[res] = vname

        e = site.stmt.exp.indices[0]
        new_stmts: List[A.Let] = [
            A.Let(
                [A.PatElem(mapping[tvar], ScalarType("i64"))],
                A.ScalarE(sym(e)),
            )
        ]
        new_stmts.extend(_ren_stmts(body.stmts, mapping))
        if res == tvar:
            # map (i < w) { i }: the value *is* the thread index.
            new_stmts.append(
                A.Let(
                    [A.PatElem(vname, vtype)],
                    A.ScalarE(SymExpr.var(mapping[tvar])),
                )
            )
        site.block.stmts[site.index : site.index + 1] = new_stmts


# ----------------------------------------------------------------------
def fuse_fun(fun: A.Fun, max_rounds: int = 10, shared=None) -> FuseStats:
    """Run producer-consumer fusion to a fixpoint on ``fun`` (in place).

    ``shared`` is the compilation's shared state (see
    :class:`repro.pipeline.CompileContext`): when given, the root
    assumption context and the Prover/NonOverlapChecker memo pool are
    reused across the whole pipeline instead of rebuilt per pass.
    """
    return _Fuser(fun, max_rounds=max_rounds, shared=shared).run()
