"""Access summaries for the short-circuiting index analysis (section V-B).

An :class:`AccessSet` is a union of LMADs over one memory block, in
disjunctive form -- emptiness of intersections is checked pairwise with the
non-overlap test, so no LMAD subtraction or intersection is ever needed
(the simplification over classic parallelization analyses that the paper's
related-work section highlights).

:func:`collect_dst_uses` computes, for one statement, the set of memory
locations of a given destination block that the statement may touch
(reading *or* writing), recursing into nested blocks and aggregating
``map``/``loop`` bodies over their index variable by LMAD dimension
promotion.  A failure to aggregate yields the conservative *unknown* set,
which defeats every later disjointness check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List

from repro.lmad import IndexFn, NonOverlapChecker, aggregate_over_loop
from repro.lmad.lmad import Lmad
from repro.symbolic import Prover, SymExpr

from repro.ir import ast as A
from repro.mem.memir import MemBinding, binding_of


@dataclass
class AccessSet:
    """A union of LMAD access sets; ``unknown`` is the conservative top."""

    lmads: List[Lmad] = field(default_factory=list)
    unknown: bool = False

    def add_lmad(self, lmad: Lmad) -> None:
        self.lmads.append(lmad)

    def add_ixfn(self, ixfn: IndexFn) -> None:
        """Abstract set of an index function (paper footnote 26: composed
        index functions over-approximate to the unknown set)."""
        single = ixfn.as_single()
        if single is None:
            self.unknown = True
        else:
            self.lmads.append(single)

    def add_all(self, other: "AccessSet") -> None:
        self.unknown = self.unknown or other.unknown
        self.lmads.extend(other.lmads)

    def is_empty(self) -> bool:
        return not self.unknown and not self.lmads

    def substitute(self, mapping) -> "AccessSet":
        return AccessSet(
            [l.substitute(mapping) for l in self.lmads], self.unknown
        )

    def aggregated(
        self, var: str, count: SymExpr, prover: Prover
    ) -> "AccessSet":
        """Union over ``var = 0..count-1`` by dimension promotion."""
        if self.unknown:
            return AccessSet(unknown=True)
        out = AccessSet()
        for l in self.lmads:
            if var in l.free_vars():
                agg = aggregate_over_loop(l, var, count, prover)
                if agg is None:
                    return AccessSet(unknown=True)
                out.add_lmad(agg)
            else:
                out.add_lmad(l)
        return out

    def disjoint_from(
        self, other: "AccessSet", checker: NonOverlapChecker
    ) -> bool:
        """Provably empty intersection (pairwise non-overlap)."""
        if self.is_empty() or other.is_empty():
            return True
        if self.unknown or other.unknown:
            return False
        return all(
            checker.check(a, b) for a in self.lmads for b in other.lmads
        )

    def __str__(self) -> str:
        if self.unknown:
            return "<unknown>"
        return " u ".join(str(l) for l in self.lmads) if self.lmads else "{}"


@dataclass
class StmtAccess:
    """Destination-memory locations one statement may touch."""

    uses: AccessSet = field(default_factory=AccessSet)


def _ixfn_region_of_update(
    binding: MemBinding, spec: A.IndexSpec
) -> IndexFn:
    if isinstance(spec, A.PointSpec):
        f = binding.ixfn
        for k, idx in enumerate(spec.indices):
            f = f.fix_dim(0, idx)
        return f
    if isinstance(spec, A.TripletSpec):
        return binding.ixfn.slice_triplets(spec.triplets)
    assert isinstance(spec, A.LmadSpec)
    return binding.ixfn.lmad_slice(spec.lmad)


def collect_dst_uses(
    stmt: A.Let,
    dst_mem: str,
    bindings: Dict[str, MemBinding],
    prover: Prover,
    skip_vars: FrozenSet[str] = frozenset(),
) -> AccessSet:
    """All locations of ``dst_mem`` the statement may read or write.

    Precision matters here: an element read ``diag[i]`` contributes the
    *point* ``ixfn(i)``, not the whole slice -- this is what lets the
    per-thread conditions of section V-B prove fig. 1 (left) legal.  Pure
    change-of-layout statements touch no memory at all.

    ``bindings`` maps array variables in scope to their (current) memory
    bindings; ``skip_vars`` excludes the candidate's own aliases (their
    accesses are tracked separately as the write summary).
    """
    out = AccessSet()

    def full_use(name: str) -> None:
        if name in skip_vars:
            return
        b = bindings.get(name)
        if b is not None and b.mem == dst_mem:
            out.add_ixfn(b.ixfn)

    exp = stmt.exp

    # Pure views and scalar computations: no memory traffic.
    if isinstance(
        exp,
        (
            A.SliceT,
            A.LmadSlice,
            A.Rearrange,
            A.Reshape,
            A.Reverse,
            A.VarRef,
            A.Lit,
            A.ScalarE,
            A.BinOp,
            A.UnOp,
            A.Alloc,
            A.Iota,
            A.Replicate,
            A.Scratch,
        ),
    ):
        # Fresh fills write their (fresh) destination; it can only be the
        # destination block if a previous round rebased them -- then their
        # pattern binding says so.
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None and pe.name not in skip_vars:
                b = binding_of(pe)
                if b.mem == dst_mem and not isinstance(
                    exp, (A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse, A.VarRef, A.Scratch)
                ):
                    out.add_ixfn(b.ixfn)
        return out

    if isinstance(exp, A.Index):
        if exp.src not in skip_vars:
            b = bindings.get(exp.src)
            if b is not None and b.mem == dst_mem:
                single = b.ixfn.as_single()
                if single is None:
                    out.unknown = True
                else:
                    out.add_lmad(Lmad(single.apply(exp.indices), ()))
        return out

    if isinstance(exp, (A.Copy, A.Reduce, A.ArgMin)):
        full_use(exp.src)
        # A copy's write side is its result binding.
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None and pe.name not in skip_vars:
                b = binding_of(pe)
                if b.mem == dst_mem:
                    out.add_ixfn(b.ixfn)
        return out

    if isinstance(exp, A.Concat):
        for s in exp.srcs:
            full_use(s)
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None and pe.name not in skip_vars:
                b = binding_of(pe)
                if b.mem == dst_mem:
                    out.add_ixfn(b.ixfn)
        return out

    if isinstance(exp, A.Update):
        if isinstance(exp.value, str):
            full_use(exp.value)
        if exp.src not in skip_vars and stmt.names[0] not in skip_vars:
            b = bindings.get(exp.src)
            if b is not None and b.mem == dst_mem:
                out.add_ixfn(_ixfn_region_of_update(b, exp.spec))
        return out

    # Nested blocks: aggregate over the index variable.
    if isinstance(exp, A.Map):
        inner = collect_block_dst_uses(
            exp.lam.body, dst_mem, bindings, prover, skip_vars
        )
        out.add_all(inner.aggregated(exp.lam.params[0], exp.width, prover))
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None and pe.name not in skip_vars:
                b = binding_of(pe)
                if b.mem == dst_mem:
                    out.add_ixfn(b.ixfn)
        return out
    if isinstance(exp, A.Loop):
        body_bindings = dict(bindings)
        pb = getattr(exp.body, "param_bindings", {})
        body_bindings.update(pb)
        inner = collect_block_dst_uses(
            exp.body, dst_mem, body_bindings, prover, skip_vars
        )
        out.add_all(inner.aggregated(exp.index, exp.count, prover))
        return out
    if isinstance(exp, A.If):
        for blk in (exp.then_block, exp.else_block):
            out.add_all(
                collect_block_dst_uses(blk, dst_mem, bindings, prover, skip_vars)
            )
        return out
    return out


def collect_block_dst_uses(
    block: A.Block,
    dst_mem: str,
    bindings: Dict[str, MemBinding],
    prover: Prover,
    skip_vars: FrozenSet[str] = frozenset(),
) -> AccessSet:
    out = AccessSet()
    local = dict(bindings)
    for stmt in block.stmts:
        out.add_all(collect_dst_uses(stmt, dst_mem, local, prover, skip_vars))
        for pe in stmt.pattern:
            if pe.is_array() and pe.mem is not None:
                local[pe.name] = binding_of(pe)
    return out
