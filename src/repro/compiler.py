"""The compilation pipeline driver: source IR to executable memory IR.

Mirrors the relevant slice of the Futhark pipeline the paper extends:

1. type/uniqueness checking (:mod:`repro.ir.typecheck`);
2. alias and last-use analyses (:mod:`repro.ir.alias`, ``lastuse``);
3. memory introduction (:mod:`repro.mem.introduce`);
4. allocation hoisting (:mod:`repro.mem.hoist`);
5. **array short-circuiting** (:mod:`repro.opt.shortcircuit`) -- optional,
   so the unoptimized pipeline is the paper's "Unopt. Futhark" baseline;
6. dead-allocation cleanup;
7. **producer-consumer fusion** (:mod:`repro.opt.fuse`) -- optional;
8. **memory reuse** (:mod:`repro.reuse`) -- optional: allocation
   coalescing plus the ``mem_frees`` lifetime annotations.

:func:`compile_fun` is a thin, kwarg-compatible wrapper over
:func:`repro.runtime.compile_cached` (the persistent program cache of
:mod:`repro.runtime`: repeat compiles of structurally identical
functions are O(lookup)), which itself drives
:mod:`repro.pipeline`: the flags (or a named ``pipeline=`` preset --
``unopt``, ``sc``, ``sc+fuse``, ``full``) select an ordered pass list
(:func:`repro.pipeline.build_pipeline`), and a
:class:`~repro.pipeline.PassManager` runs it over a shared
:class:`~repro.pipeline.CompileContext` (pooled Prover/NonOverlapChecker
memos, derived-analysis validity ledger).  Every pass occurrence is
individually timed under a unique stage key, and the whole run is
recorded as a JSON-serializable :class:`~repro.pipeline.PipelineTrace`
on :attr:`CompiledFun.trace` (``python -m repro.bench --explain`` pretty-
prints it; ``REPRO_PRINT_AFTER=<pass>`` dumps IR snapshots).

With ``verify=True`` the :mod:`repro.analysis` verifier re-checks the IR
at the declared checkpoints; any errors raise
:class:`repro.analysis.VerificationError` with the offending stage
attached, and all reports are kept on :attr:`CompiledFun.verify_reports`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Optional

from repro.ir import ast as A
from repro.ir.lastuse import analyze_last_uses  # noqa: F401  (test seam)
from repro.ir.typecheck import typecheck_fun
from repro.mem.hoist import hoist_allocations, remove_dead_allocations
from repro.mem.introduce import introduce_memory
from repro.opt.shortcircuit import ShortCircuitStats

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.analysis.diagnostics import Report
    from repro.opt.fuse import FuseStats
    from repro.pipeline.trace import PipelineTrace
    from repro.reuse.coalesce import ReuseStats

__all__ = [
    "CompiledFun",
    "compile_fun",
    "typecheck_fun",
    "introduce_memory",
    "hoist_allocations",
    "remove_dead_allocations",
    "analyze_last_uses",
]


@dataclass
class CompiledFun:
    """A compiled program plus per-stage compile-time accounting."""

    fun: A.Fun
    short_circuited: bool
    sc_stats: Optional[ShortCircuitStats]
    #: What the memory-reuse coalescer did (None when reuse=False).
    reuse_stats: Optional["ReuseStats"] = None
    #: What producer-consumer fusion did (None when fuse=False).
    fuse_stats: Optional["FuseStats"] = None
    #: Unique stage key -> seconds; every pass occurrence gets its own
    #: key (``dead_allocs``, ``dead_allocs#2``, ...) so repeated passes
    #: never overwrite each other and ``compile_seconds`` is exact.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: stage name -> verifier report, populated when compiled with verify=True
    verify_reports: Dict[str, "Report"] = field(default_factory=dict)
    #: Full structured observability record of the pipeline run.
    trace: Optional["PipelineTrace"] = None
    #: The preset this compilation corresponds to (``unopt``, ``sc``,
    #: ``sc+fuse``, ``full``), or ``custom`` for other flag combinations.
    pipeline: str = "custom"

    @property
    def compile_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def sc_seconds(self) -> float:
        return self.stage_seconds.get("short_circuit", 0.0)


def compile_fun(
    fun: A.Fun,
    short_circuit: bool = True,
    enable_splitting: bool = True,
    typecheck: bool = True,
    verify: bool = False,
    fuse: bool = True,
    reuse: bool = True,
    pipeline: Optional[str] = None,
    cache=None,
) -> CompiledFun:
    """Compile a source function (which is not mutated), cached.

    A thin wrapper over :func:`repro.runtime.compile_cached`: the
    compilation is keyed by (program hash, resolved pipeline,
    symbolic-shape class, assumptions, options) and repeat compiles of a
    structurally identical function return the memoized ``CompiledFun``
    in O(lookup).  ``cache=None`` follows the ``REPRO_PROGCACHE``
    environment default (in-process LRU); ``cache=False`` forces a cold
    compile; ``cache="disk"`` adds the persistent layer under
    ``benchmarks/results/.progcache/``.

    ``pipeline`` selects a named preset (``unopt``, ``sc``, ``sc+fuse``,
    ``full``) and overrides the ``short_circuit``/``fuse``/``reuse``
    flags; without it the flags pick the pass list directly (defaults ==
    the ``full`` preset).

    ``verify=True`` runs the :mod:`repro.analysis` verifier after each
    memory-transforming stage and raises
    :class:`~repro.analysis.VerificationError` on the first stage whose
    output has errors, identifying the pass that broke the program.

    ``fuse=False`` disables producer-consumer fusion -- the ablation
    path: the traffic gate compares fused and unfused runs and requires
    bit-identical outputs with strictly less traffic.

    ``reuse=False`` disables allocation coalescing and the ``mem_frees``
    lifetime annotations; the differential tests compare against it to
    pin that reuse never changes outputs or traffic.
    """
    from repro.runtime import compile_cached

    return compile_cached(
        fun,
        short_circuit=short_circuit,
        enable_splitting=enable_splitting,
        typecheck=typecheck,
        verify=verify,
        fuse=fuse,
        reuse=reuse,
        pipeline=pipeline,
        cache=cache,
    )


def _compile_uncached(
    fun: A.Fun,
    short_circuit: bool,
    enable_splitting: bool,
    typecheck: bool,
    verify: bool,
    fuse: bool,
    reuse: bool,
    label: str,
) -> CompiledFun:
    """One full pipeline run (no cache): the cold-compile primitive.

    Flags arrive already resolved against any preset (see
    :func:`repro.runtime.program._resolve_flags`); ``label`` is the
    preset name or ``custom``.
    """
    from repro.pipeline import CompileContext, PassManager, build_pipeline

    ctx = CompileContext(
        source=fun, verify=verify, enable_splitting=enable_splitting
    )
    passes = build_pipeline(
        short_circuit=short_circuit,
        fuse=fuse,
        reuse=reuse,
        typecheck=typecheck,
    )
    trace = PassManager(passes, name=label).run(ctx)
    assert ctx.mfun is not None
    return CompiledFun(
        ctx.mfun,
        short_circuit,
        ctx.sc_stats,
        reuse_stats=ctx.reuse_stats,
        fuse_stats=ctx.fuse_stats,
        stage_seconds=trace.stage_seconds(),
        verify_reports=ctx.verify_reports,
        trace=trace,
        pipeline=label,
    )
