"""The compilation pipeline: source IR to memory-annotated executable IR.

Mirrors the relevant slice of the Futhark pipeline the paper extends:

1. type/uniqueness checking (:mod:`repro.ir.typecheck`);
2. alias and last-use analyses (:mod:`repro.ir.alias`, ``lastuse``);
3. memory introduction (:mod:`repro.mem.introduce`);
4. allocation hoisting (:mod:`repro.mem.hoist`);
5. **array short-circuiting** (:mod:`repro.opt.shortcircuit`) -- optional,
   so the unoptimized pipeline is the paper's "Unopt. Futhark" baseline;
6. dead-allocation cleanup;
7. **producer-consumer fusion** (:mod:`repro.opt.fuse`) -- optional:
   inlines a scalar ``map`` producer into its sole consumer so the
   intermediate array (and its write+read round trip) disappears; runs
   after short-circuiting (whose rebases it must respect) and before
   reuse (fusion shrinks live ranges, giving the coalescer more room);
8. **memory reuse** (:mod:`repro.reuse`) -- optional: coalesces
   allocations with provably disjoint live ranges (another
   dead-allocation sweep drops the merged-away ``alloc`` statements),
   then annotates every statement with the blocks whose host-level
   lifetime ends there (``Let.mem_frees``), which is what the executor's
   peak-footprint accounting and the static estimator consume.

With ``verify=True`` the :mod:`repro.analysis` verifier re-checks the IR
after memory introduction, after hoisting + last-use analysis, and after
short-circuiting; any errors raise :class:`repro.analysis.VerificationError`
with the offending stage attached, and all reports are kept on
:attr:`CompiledFun.verify_reports` for inspection.

Compile times are recorded per stage; the short-circuiting stage's share
reproduces the compile-time overhead discussion of paper section V-D.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ir import ast as A
from repro.ir.lastuse import analyze_last_uses
from repro.ir.typecheck import typecheck_fun
from repro.mem.hoist import hoist_allocations, remove_dead_allocations
from repro.mem.introduce import introduce_memory
from repro.opt.shortcircuit import ShortCircuitStats, short_circuit_fun


@dataclass
class CompiledFun:
    """A compiled program plus per-stage compile-time accounting."""

    fun: A.Fun
    short_circuited: bool
    sc_stats: Optional[ShortCircuitStats]
    #: What the memory-reuse coalescer did (None when reuse=False).
    reuse_stats: Optional["object"] = None
    #: What producer-consumer fusion did (None when fuse=False).
    fuse_stats: Optional["object"] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: stage name -> verifier report, populated when compiled with verify=True
    verify_reports: Dict[str, "object"] = field(default_factory=dict)

    @property
    def compile_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def sc_seconds(self) -> float:
        return self.stage_seconds.get("short_circuit", 0.0)


def compile_fun(
    fun: A.Fun,
    short_circuit: bool = True,
    enable_splitting: bool = True,
    typecheck: bool = True,
    verify: bool = False,
    fuse: bool = True,
    reuse: bool = True,
) -> CompiledFun:
    """Run the full pipeline on a source function (which is not mutated).

    ``verify=True`` runs the :mod:`repro.analysis` verifier after each
    memory-transforming stage and raises
    :class:`~repro.analysis.VerificationError` on the first stage whose
    output has errors, identifying the pass that broke the program.

    ``fuse=False`` disables producer-consumer fusion -- the ablation
    path: the traffic gate compares fused and unfused runs and requires
    bit-identical outputs with strictly less traffic.

    ``reuse=False`` disables allocation coalescing and the ``mem_frees``
    lifetime annotations; the differential tests compare against it to
    pin that reuse never changes outputs or traffic.
    """
    stages: Dict[str, float] = {}
    reports: Dict[str, object] = {}

    def timed(name, thunk):
        t0 = time.perf_counter()
        out = thunk()
        stages[name] = time.perf_counter() - t0
        return out

    def checked(stage, target):
        if not verify:
            return
        from repro.analysis import VerificationError, verify_fun

        report = timed(f"verify[{stage}]", lambda: verify_fun(target, stage=stage))
        reports[stage] = report
        if not report.ok():
            raise VerificationError(stage, report)

    if typecheck:
        timed("typecheck", lambda: typecheck_fun(fun))
    mfun = timed("introduce_memory", lambda: introduce_memory(fun))
    checked("introduce_memory", mfun)
    timed("hoist", lambda: hoist_allocations(mfun))
    timed("last_use", lambda: analyze_last_uses(mfun))
    checked("hoist+last_use", mfun)
    sc_stats: Optional[ShortCircuitStats] = None
    if short_circuit:
        sc_stats = timed(
            "short_circuit",
            lambda: short_circuit_fun(mfun, enable_splitting=enable_splitting),
        )
        timed("dead_allocs", lambda: remove_dead_allocations(mfun))
        checked("short_circuit", mfun)
    fuse_stats = None
    if fuse:
        from repro.opt.fuse import fuse_fun

        fuse_stats = timed("fuse", lambda: fuse_fun(mfun))
        if fuse_stats.committed:
            timed("dead_allocs[fuse]", lambda: remove_dead_allocations(mfun))
        checked("fuse", mfun)
    reuse_stats = None
    if reuse:
        from repro.reuse import annotate_frees, reuse_allocations

        reuse_stats = timed("reuse", lambda: reuse_allocations(mfun))
        if reuse_stats.mapping:
            timed("dead_allocs[reuse]", lambda: remove_dead_allocations(mfun))
        timed("annotate_frees", lambda: annotate_frees(mfun))
        checked("reuse", mfun)
    return CompiledFun(
        mfun,
        short_circuit,
        sc_stats,
        reuse_stats=reuse_stats,
        fuse_stats=fuse_stats,
        stage_seconds=stages,
        verify_reports=reports,
    )
