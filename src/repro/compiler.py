"""The compilation pipeline: source IR to memory-annotated executable IR.

Mirrors the relevant slice of the Futhark pipeline the paper extends:

1. type/uniqueness checking (:mod:`repro.ir.typecheck`);
2. alias and last-use analyses (:mod:`repro.ir.alias`, ``lastuse``);
3. memory introduction (:mod:`repro.mem.introduce`);
4. allocation hoisting (:mod:`repro.mem.hoist`);
5. **array short-circuiting** (:mod:`repro.opt.shortcircuit`) -- optional,
   so the unoptimized pipeline is the paper's "Unopt. Futhark" baseline;
6. dead-allocation cleanup.

Compile times are recorded per stage; the short-circuiting stage's share
reproduces the compile-time overhead discussion of paper section V-D.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.ir import ast as A
from repro.ir.lastuse import analyze_last_uses
from repro.ir.typecheck import typecheck_fun
from repro.mem.hoist import hoist_allocations, remove_dead_allocations
from repro.mem.introduce import introduce_memory
from repro.opt.shortcircuit import ShortCircuitStats, short_circuit_fun


@dataclass
class CompiledFun:
    """A compiled program plus per-stage compile-time accounting."""

    fun: A.Fun
    short_circuited: bool
    sc_stats: Optional[ShortCircuitStats]
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def compile_seconds(self) -> float:
        return sum(self.stage_seconds.values())

    @property
    def sc_seconds(self) -> float:
        return self.stage_seconds.get("short_circuit", 0.0)


def compile_fun(
    fun: A.Fun,
    short_circuit: bool = True,
    enable_splitting: bool = True,
    typecheck: bool = True,
) -> CompiledFun:
    """Run the full pipeline on a source function (which is not mutated)."""
    stages: Dict[str, float] = {}

    def timed(name, thunk):
        t0 = time.perf_counter()
        out = thunk()
        stages[name] = time.perf_counter() - t0
        return out

    if typecheck:
        timed("typecheck", lambda: typecheck_fun(fun))
    mfun = timed("introduce_memory", lambda: introduce_memory(fun))
    timed("hoist", lambda: hoist_allocations(mfun))
    timed("last_use", lambda: analyze_last_uses(mfun))
    sc_stats: Optional[ShortCircuitStats] = None
    if short_circuit:
        sc_stats = timed(
            "short_circuit",
            lambda: short_circuit_fun(mfun, enable_splitting=enable_splitting),
        )
        timed("dead_allocs", lambda: remove_dead_allocations(mfun))
    return CompiledFun(mfun, short_circuit, sc_stats, stages)
