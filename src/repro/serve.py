"""Command-line serving harness: compile once, serve many.

    python -m repro.serve                      # serve all seven benchmarks
    python -m repro.serve nw lud               # a subset
    python -m repro.serve nw --requests 500    # heavier traffic
    python -m repro.serve nw --workers 8       # wider worker pool
    python -m repro.serve nw --pipeline sc     # a different preset
    python -m repro.serve --json               # machine-readable report

Each benchmark is compiled into a :class:`repro.runtime.Program` (hitting
the persistent program cache), provisioned with pooled buffers, and
served by a pool of worker threads draining a request queue.  The report
carries throughput, p50/p99 latency, warm-vs-cold amortization (mean
warm call vs mean cold compile+run, extrapolated to the 100-call
windows), pool hit rate, and the correctness verdicts (pooled outputs
and ``ExecStats`` signatures must match a fresh uncached run on both
executor tiers).  Exit status is nonzero if any benchmark fails the
correctness check.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings

from repro.bench.harness import PERF_DATASETS
from repro.bench.programs import all_benchmarks
from repro.runtime.serve import measure_serve


def main(argv=None) -> int:
    warnings.filterwarnings("ignore")
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("benchmarks", nargs="*", help="subset to serve")
    parser.add_argument("--requests", type=int, default=100, metavar="N",
                        help="warm requests per benchmark (default 100)")
    parser.add_argument("--workers", type=int, default=4, metavar="N",
                        help="concurrent worker threads (default 4)")
    parser.add_argument("--cold-samples", type=int, default=3, metavar="N",
                        help="cold compile+run samples for the "
                             "amortization baseline (default 3)")
    parser.add_argument("--pipeline", default="full",
                        choices=("unopt", "sc", "sc+fuse", "full"),
                        help="pipeline preset to serve (default full)")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    parser.add_argument("--list", action="store_true",
                        help="list available benchmarks")
    args = parser.parse_args(argv)

    registry = all_benchmarks()
    if args.list:
        for name in registry:
            print(name)
        return 0

    names = args.benchmarks or list(registry)
    unknown = [n for n in names if n not in registry]
    if unknown:
        print(f"unknown benchmark(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    report = {}
    failed = []
    for name in names:
        serve = measure_serve(
            registry[name],
            PERF_DATASETS[name],
            requests=args.requests,
            workers=args.workers,
            cold_samples=args.cold_samples,
            pipeline=args.pipeline,
        )
        report[name] = serve
        if not args.json:
            print(f"== {name} ({serve['pipeline']}, cache "
                  f"{serve['cache_state']}) ==")
            print(f"  throughput : {serve['throughput_rps']:10.1f} req/s "
                  f"({serve['requests']} requests, "
                  f"{serve['workers']} workers)")
            print(f"  latency    : p50 {serve['p50_ms']:.2f}ms / "
                  f"p99 {serve['p99_ms']:.2f}ms / "
                  f"mean {serve['mean_ms']:.2f}ms")
            print(f"  amortize   : warm {serve['warm_call_s'] * 1e3:.2f}ms "
                  f"vs cold {serve['cold_call_s'] * 1e3:.2f}ms per call "
                  f"-> 100 warm = {serve['warm_cold_ratio']:.1%} "
                  f"of 100 cold")
            print(f"  pool       : {serve['pool_hits_total']} hits / "
                  f"{serve['pool_misses_total']} misses over the "
                  f"program lifetime (rate {serve['pool_hit_rate']:.2f})")
            print(f"  memo       : {serve['memo_hits']} responses "
                  f"recalled (rate {serve['memo_hit_rate']:.2f})")
            print(f"  identical  : {serve['ok']}")
        if not serve["ok"]:
            failed.append(name)

    if args.json:
        print(json.dumps(report, indent=2))
    if failed:
        print(f"SERVE CORRECTNESS FAILED: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
