"""Pooled flat buffers: reuse the allocation plan across executions.

Every ``MemExecutor.run`` of a compiled program allocates the same
sequence of flat buffers (the coalesced allocation plan computed by
:mod:`repro.reuse` is a static property of the IR), yet the executor
historically paid a fresh ``np.zeros`` for each of them on every call.
For a compile-once, serve-many workload that per-call allocation cost --
page faults included -- dominates small-program latency.

:class:`BufferPool` keeps returned buffers on free lists keyed by exact
``(numpy dtype, element count)`` so a pooled buffer is byte-for-byte the
same shape the executor would have allocated: the high-water footprint
accounting (``ExecStats.peak_bytes``) stays bit-identical to the
unpooled path because the executor's lifetime model never sees a
difference.  Reused buffers are **zero-filled on acquisition** (not on
release), matching the deterministic all-zeros contents of a fresh
``np.zeros`` -- the semantics ``Scratch`` relies on -- so even a pool
whose idle buffers were poisoned between requests hands out pristine
memory.

Concurrency follows a *leasing* rule: the pool itself is lock-protected
and shared (typically one per :class:`~repro.runtime.Program`), while
each execution draws its buffers through a private :class:`PoolLease`.
A leased buffer belongs to exactly one run until the lease closes, so
two workers serving the same program concurrently never share mutable
executor state; closing the lease (normally via ``with``) returns every
buffer to the shared free lists.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.ir.types import DTYPE_INFO

#: Free-list key: (canonical numpy dtype string, element count).
PoolKey = Tuple[str, int]


def _pool_key(dtype: str, size: int) -> PoolKey:
    return (np.dtype(DTYPE_INFO[dtype][0]).str, size)


@dataclass
class PlanEntry:
    """The materialized allocation plan of one shape class.

    Recorded from the first execution at that shape: the exact multiset
    of buffers the run drew (as ``(numpy dtype str, size)`` pairs, i.e.
    :class:`PoolLease.manifest` output).  ``BufferPool.reserve`` can
    pre-allocate ``copies`` leases' worth so a worker fleet starts with
    a warm pool instead of missing once per worker.
    """

    manifest: Tuple[Tuple[str, int], ...]
    #: How many concurrent leases the pool has been provisioned for.
    reserved_copies: int = 0


class BufferPool:
    """Shared, thread-safe free lists of exact-size flat buffers."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._free: Dict[PoolKey, List[np.ndarray]] = {}
        #: Cumulative acquisition counters (a lease also tallies its own).
        self.hits = 0
        self.misses = 0
        #: shape-class key -> materialized allocation plan.
        self._plans: Dict[str, PlanEntry] = {}

    # ------------------------------------------------------------------
    # Acquisition / release
    # ------------------------------------------------------------------
    def acquire(
        self, size: int, dtype: str, zero: bool = True
    ) -> Tuple[np.ndarray, bool]:
        """A buffer of exactly ``size`` elements of ``dtype``.

        Returns ``(buffer, reused)``.  A reused buffer is zero-filled
        here (when ``zero``) so its contents are indistinguishable from
        a fresh ``np.zeros``; callers that overwrite the whole buffer
        anyway (input binding) pass ``zero=False``.
        """
        key = _pool_key(dtype, size)
        with self._lock:
            lst = self._free.get(key)
            buf = lst.pop() if lst else None
            if buf is None:
                self.misses += 1
            else:
                self.hits += 1
        if buf is None:
            if zero:
                return np.zeros(size, dtype=DTYPE_INFO[dtype][0]), False
            return np.empty(size, dtype=DTYPE_INFO[dtype][0]), False
        if zero:
            buf.fill(0)
        return buf, True

    def release(self, buf: np.ndarray) -> None:
        key = (buf.dtype.str, buf.size)
        with self._lock:
            self._free.setdefault(key, []).append(buf)

    # ------------------------------------------------------------------
    # Allocation-plan materialization
    # ------------------------------------------------------------------
    def note_plan(self, shape_key: str, manifest) -> None:
        """Record a shape class's allocation plan (first run only)."""
        with self._lock:
            if shape_key not in self._plans:
                self._plans[shape_key] = PlanEntry(tuple(manifest))

    def plan(self, shape_key: str):
        return self._plans.get(shape_key)

    def reserve(self, shape_key: str, copies: int) -> int:
        """Pre-allocate up to ``copies`` leases' worth of the plan.

        Returns the number of buffers newly allocated.  Idempotent per
        ``copies`` level: reserving for 4 workers after reserving for 2
        only adds the difference.
        """
        entry = self._plans.get(shape_key)
        if entry is None or copies <= entry.reserved_copies:
            return 0
        need: Dict[PoolKey, int] = {}
        for dt_str, size in entry.manifest:
            key = (np.dtype(dt_str).str, size)
            need[key] = need.get(key, 0) + 1
        created = 0
        with self._lock:
            for key, per_lease in need.items():
                lst = self._free.setdefault(key, [])
                target = per_lease * copies
                np_dtype, size = np.dtype(key[0]), key[1]
                while len(lst) < target:
                    lst.append(np.zeros(size, dtype=np_dtype))
                    created += 1
            entry.reserved_copies = copies
        return created

    # ------------------------------------------------------------------
    def lease(self) -> "PoolLease":
        return PoolLease(self)

    def free_buffers(self) -> int:
        with self._lock:
            return sum(len(v) for v in self._free.values())

    def free_bytes(self) -> int:
        with self._lock:
            return sum(b.nbytes for v in self._free.values() for b in v)

    def poison(self, value: float = float("nan")) -> None:
        """Overwrite every *idle* buffer (test hook: a dirty pool must
        still serve bit-identical results, because acquisition zeros)."""
        with self._lock:
            for lst in self._free.values():
                for buf in lst:
                    if buf.dtype.kind == "f":
                        buf.fill(value)
                    elif buf.dtype.kind == "b":
                        buf.fill(True)
                    else:
                        buf.fill(np.iinfo(buf.dtype).max)

    def clear(self) -> None:
        with self._lock:
            self._free.clear()
            self._plans.clear()
            self.hits = 0
            self.misses = 0


@dataclass
class PoolLease:
    """One run's private claim on pool buffers (returned on close)."""

    pool: BufferPool
    _held: List[np.ndarray] = field(default_factory=list)
    hits: int = 0
    misses: int = 0
    closed: bool = False

    def acquire(
        self, size: int, dtype: str, zero: bool = True
    ) -> Tuple[np.ndarray, bool]:
        assert not self.closed, "lease already closed"
        buf, reused = self.pool.acquire(size, dtype, zero=zero)
        self._held.append(buf)
        if reused:
            self.hits += 1
        else:
            self.misses += 1
        return buf, reused

    def manifest(self):
        """(dtype-agnostic) what this lease drew, as (np dtype str, size)."""
        return tuple((b.dtype.str, b.size) for b in self._held)

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        for buf in self._held:
            self.pool.release(buf)
        self._held.clear()

    def __enter__(self) -> "PoolLease":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
