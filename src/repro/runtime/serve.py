"""The serving harness: drive N requests through a :class:`Program`.

``python -m repro.serve`` is the "heavy production traffic" shape of the
ROADMAP made measurable: a worker pool of threads drains a request queue
against one shared :class:`~repro.runtime.Program`, and the harness
reports

* **throughput** (requests/second over the measured window),
* **latency** (p50 / p99 over per-request wall clocks),
* **warm-vs-cold amortization** -- mean warm call vs mean cold
  ``compile_fun`` + run (cache bypassed), both per call and extrapolated
  to 100 calls (the regression gate requires the warm 100 to finish in
  under 25% of the cold 100),
* **pool hit rate** -- the fraction of buffer acquisitions the
  :class:`~repro.runtime.pool.BufferPool` served from its free lists
  (counted over the runs that actually executed),
* **memo hit rate** -- the fraction of requests recalled from the
  program's response memo (sound for a pure language; see
  :class:`~repro.runtime.Program`).

Correctness rides along: before measuring, the harness runs the pooled
program and a fresh uncached ``compile_fun`` + :class:`MemExecutor` on
identical inputs under *both* executor tiers and requires bit-identical
outputs and equal ``ExecStats.signature()``.  A serving stack that is
fast but wrong exits nonzero.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.compiler import _compile_uncached
from repro.mem.exec import MemExecutor
from repro.runtime.program import Program, compile as compile_program


def _percentile(sorted_vals: List[float], q: float) -> float:
    """Nearest-rank percentile of an already-sorted latency list."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, int(round(q * (len(sorted_vals) - 1)))))
    return sorted_vals[idx]


def serve_program(
    program: Program,
    inputs: Dict[str, object],
    requests: int,
    workers: int = 1,
    barrier: Optional[threading.Barrier] = None,
) -> Dict[str, object]:
    """Serve ``requests`` identical requests over ``workers`` threads.

    Returns the measured section: throughput, p50/p99 latency, pool
    counters.  Workers share the program (and its pool) but each request
    runs on a private executor with a private pool lease; ``barrier``
    (defaulting to one spanning all workers) synchronizes the start so
    the race surface is maximal, which doubles as the thread-safety
    smoke the test suite leans on.
    """
    program.reserve(inputs, workers)
    q: "queue.Queue[int]" = queue.Queue()
    for i in range(requests):
        q.put(i)
    latencies: List[float] = []
    pool_hits = [0]
    pool_misses = [0]
    errors: List[BaseException] = []
    lock = threading.Lock()
    start_barrier = barrier or threading.Barrier(workers)
    memo_before = program.memo_hits

    def worker() -> None:
        try:
            start_barrier.wait()
            while True:
                try:
                    q.get_nowait()
                except queue.Empty:
                    return
                t0 = time.perf_counter()
                _, stats = program.run(inputs)
                dt = time.perf_counter() - t0
                with lock:
                    latencies.append(dt)
                    pool_hits[0] += stats.pool_hits
                    pool_misses[0] += stats.pool_misses
        except BaseException as exc:  # surfaced to the caller
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=worker) for _ in range(workers)]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t_start
    if errors:
        raise errors[0]

    lat = sorted(latencies)
    acq = pool_hits[0] + pool_misses[0]
    memo_hits = program.memo_hits - memo_before
    return {
        "requests": requests,
        "workers": workers,
        "wall_s": wall,
        "throughput_rps": requests / wall if wall > 0 else float("inf"),
        "p50_ms": _percentile(lat, 0.50) * 1e3,
        "p99_ms": _percentile(lat, 0.99) * 1e3,
        "mean_ms": (sum(lat) / len(lat)) * 1e3 if lat else 0.0,
        "pool_hits": pool_hits[0],
        "pool_misses": pool_misses[0],
        "pool_hit_rate": pool_hits[0] / acq if acq else 0.0,
        "memo_hits": memo_hits,
        "memo_hit_rate": memo_hits / requests if requests else 0.0,
    }


def _run_uncached(fun, inputs, vectorize: bool = True):
    ex = MemExecutor(fun, vectorize=vectorize)
    vals, stats = ex.run(**dict(inputs))
    outs = [np.asarray(Program._materialize(ex, v)) for v in vals]
    return outs, stats


def check_pooled_identical(program: Program, inputs, compiled=None) -> Dict[str, bool]:
    """Pooled vs uncached: bit-identical outputs + signatures, both tiers.

    The pooled runs bypass the response memo (``memoize=False``): this
    check exists to pin the pooled *executor* path, not the recall path.
    """
    fun = compiled.fun if compiled is not None else program.fun
    out: Dict[str, bool] = {}
    for vec, label in ((False, "interp"), (True, "vec")):
        ref_outs, ref_stats = _run_uncached(fun, inputs, vectorize=vec)
        got, stats = program.run(inputs, vectorize=vec, memoize=False)
        out[f"outputs_equal_{label}"] = all(
            np.array_equal(np.asarray(a), np.asarray(b))
            for a, b in zip(ref_outs, got)
        )
        out[f"signature_equal_{label}"] = (
            ref_stats.signature() == stats.signature()
        )
    out["ok"] = all(out.values())
    return out


def measure_serve(
    module,
    args: Sequence,
    requests: int = 100,
    workers: int = 4,
    cold_samples: int = 3,
    pipeline: str = "full",
) -> Dict[str, object]:
    """The full serve measurement for one benchmark module.

    Cold calls recompile from scratch (cache bypassed) and run on a
    fresh, unpooled executor -- exactly what every request paid before
    :mod:`repro.runtime` existed.  Warm calls go through a single
    :class:`Program`.  ``warm_100_s`` / ``cold_100_s`` extrapolate the
    measured means to the acceptance criterion's 100-call windows.
    """
    from repro.runtime.program import _resolve_flags

    fun = module.build()
    inputs = module.inputs_for(*args)
    sc, fu, re_, label = _resolve_flags(pipeline, True, True, True)

    cold_times: List[float] = []
    for _ in range(max(1, cold_samples)):
        t0 = time.perf_counter()
        compiled = _compile_uncached(
            fun, short_circuit=sc, enable_splitting=True, typecheck=True,
            verify=False, fuse=fu, reuse=re_, label=label,
        )
        ex = MemExecutor(compiled.fun)
        ex.run(**dict(inputs))
        cold_times.append(time.perf_counter() - t0)
    cold_mean = sum(cold_times) / len(cold_times)

    t0 = time.perf_counter()
    program = compile_program(fun, pipeline=pipeline)
    compile_wall = time.perf_counter() - t0

    identical = check_pooled_identical(program, inputs)
    served = serve_program(program, inputs, requests=requests, workers=workers)

    warm_mean = served["mean_ms"] / 1e3
    ratio = warm_mean / cold_mean if cold_mean > 0 else 0.0
    # The in-window counters are mostly memo recalls; the pool's own
    # cumulative tally (correctness checks + production runs) is the
    # meaningful hit rate, and what the regression gate tracks.
    acq = program.pool.hits + program.pool.misses
    return {
        "dataset": list(args),
        "pipeline": label,
        "cache_state": program.cache_state,
        "compile_wall_s": compile_wall,
        "cold_samples": len(cold_times),
        "cold_call_s": cold_mean,
        "warm_call_s": warm_mean,
        "cold_100_s": cold_mean * 100,
        "warm_100_s": warm_mean * 100,
        "warm_cold_ratio": ratio,
        "cold_compile_seconds": program.cold_compile_seconds,
        **served,
        **identical,
        "pool_hits_total": program.pool.hits,
        "pool_misses_total": program.pool.misses,
        "pool_hit_rate": program.pool.hits / acq if acq else 0.0,
    }
