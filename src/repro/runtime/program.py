"""The compile-once, serve-many handle: :class:`Program`.

A :class:`Program` freezes everything a compilation produced that is
reusable across executions:

* the **post-pipeline memory IR** (the ``CompiledFun``);
* the **vectorized dispatch plan** -- the per-statement taint-analysis
  verdicts of :class:`repro.mem.vectorize.VecEngine`, computed once and
  shared by every subsequent run's engine;
* the **offset cache** -- enumerated LMAD offsets per concrete index
  function, the dominant warm-run cost after buffer allocation;
* the **coalesced allocation plan**, materialized per shape class into a
  :class:`~repro.runtime.pool.BufferPool` whose buffers are reused
  across calls instead of re-allocated with ``np.zeros``.

Each :meth:`Program.run` builds a fresh :class:`~repro.mem.exec.
MemExecutor` (executors are cheap, single-use state machines) wired to a
private pool lease, so concurrent workers serving the same program never
share mutable executor state; the shared structures (pool free lists,
offset cache, dispatch plans) are either lock-protected or grow-only.

Outputs are materialized into caller-owned NumPy arrays before the lease
closes -- a served response never aliases pool memory.

Because the source language is pure, a compiled program is a
referentially transparent function of its inputs: same bytes in, same
bytes out, same simulated cost.  :class:`Program` therefore keeps a
small **response memo** (bounded LRU keyed by the content hash of the
request) and serves repeated identical requests from it -- the
serve-many analogue of common-subexpression elimination, and the reason
warm serving throughput is decoupled from the simulator's per-run
interpretation cost.  Every memoized response was produced by a real
pooled execution; hits return fresh copies of its outputs and
:class:`ExecStats` (so callers may mutate freely), restamped with this
call's wall clock.  Pass ``memoize=False`` (per call or per program) to
force execution -- the differential tests do, since they exist to
exercise the pooled executor itself.
"""

from __future__ import annotations

import copy
import hashlib
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.ir import ast as A
from repro.mem.exec import MemExecutor, RuntimeArray
from repro.mem.stats import ExecStats
from repro.runtime.cache import (
    COLD,
    cache_mode,
    make_key,
    program_cache,
)
from repro.runtime.pool import BufferPool


def _resolve_flags(
    pipeline: Optional[str],
    short_circuit: bool,
    fuse: bool,
    reuse: bool,
) -> Tuple[bool, bool, bool, str]:
    """Preset/flag resolution shared with :func:`repro.compiler.compile_fun`."""
    from repro.pipeline import PRESETS, preset_for_flags

    if pipeline is not None:
        if pipeline not in PRESETS:
            raise KeyError(
                f"unknown pipeline preset {pipeline!r} "
                f"(available: {', '.join(PRESETS)})"
            )
        flags = PRESETS[pipeline]
        return flags["short_circuit"], flags["fuse"], flags["reuse"], pipeline
    label = preset_for_flags(short_circuit, fuse, reuse) or "custom"
    return short_circuit, fuse, reuse, label


def compile_cached(
    fun: A.Fun,
    short_circuit: bool = True,
    enable_splitting: bool = True,
    typecheck: bool = True,
    verify: bool = False,
    fuse: bool = True,
    reuse: bool = True,
    pipeline: Optional[str] = None,
    cache=None,
    _want_state: bool = False,
):
    """Cache-aware compilation returning a plain ``CompiledFun``.

    This is what :func:`repro.compiler.compile_fun` delegates to.  The
    cache key includes the program hash, resolved pipeline, shape class,
    *and the function's assumptions* -- see :mod:`repro.runtime.cache`.
    ``cache=None`` follows the ``REPRO_PROGCACHE`` environment default
    (in-process memoization); ``cache=False`` forces a cold compile;
    ``cache="disk"`` adds the persistent on-disk layer.
    """
    from repro.compiler import _compile_uncached

    short_circuit, fuse, reuse, label = _resolve_flags(
        pipeline, short_circuit, fuse, reuse
    )

    def thunk():
        return _compile_uncached(
            fun,
            short_circuit=short_circuit,
            enable_splitting=enable_splitting,
            typecheck=typecheck,
            verify=verify,
            fuse=fuse,
            reuse=reuse,
            label=label,
        )

    mode = cache_mode(cache)
    if mode == "off":
        compiled = thunk()
        state, cold_seconds = COLD, compiled.compile_seconds
    else:
        key = make_key(
            fun, label, short_circuit, fuse, reuse,
            enable_splitting, typecheck, verify,
        )
        compiled, state, cold_seconds = program_cache().get_or_compile(
            key, thunk, disk=(mode == "disk")
        )
    if _want_state:
        return compiled, state, cold_seconds
    return compiled


class Program:
    """A compiled function plus its reusable runtime state."""

    #: Bounded response-memo size (distinct request contents retained).
    MEMO_ENTRIES = 32

    def __init__(self, compiled, cache_state: str = COLD,
                 cold_compile_seconds: Optional[float] = None,
                 memoize: bool = True):
        self.compiled = compiled
        #: How this program's compilation was obtained ("cold" /
        #: "memory" / "disk").
        self.cache_state = cache_state
        #: Wall clock of the original (uncached) compilation -- the cost
        #: a warm call amortizes.
        self.cold_compile_seconds = (
            compiled.compile_seconds
            if cold_compile_seconds is None
            else cold_compile_seconds
        )
        #: Shared allocation-plan pool (lock-protected; leased per run).
        self.pool = BufferPool()
        #: Shared per-(mem, ixfn) offset arrays (grow-only, read-only
        #: values; see MemExecutor._offsets).
        self._offs_cache: Dict = {}
        #: Shared vectorization plans (id(stmt) -> expressible?).
        self._vec_plans: Dict[int, bool] = {}
        #: Shared native-tier dispatch plans (id(stmt) -> KernelSpec or
        #: the rejection sentinel) and the lazily-built engine that owns
        #: the compiled kernels.  One emission + cc invocation per map
        #: statement per Program; every later run (and every concurrent
        #: worker) dispatches straight into the cached shared object.
        self._native_plans: Dict[int, object] = {}
        self._native_engine = None
        self._native_probed = False
        #: Serve repeated identical requests from prior responses
        #: (sound: the language is pure).  Overridable per call.
        self.memoize = memoize
        self._memo: "OrderedDict[tuple, Tuple[List[object], ExecStats]]" = (
            OrderedDict()
        )
        #: Single-flight request coalescing: request key -> the Event
        #: concurrent duplicate requests wait on while one worker
        #: produces the response (prevents a thundering herd of
        #: identical production runs on a cold memo).
        self._inflight: Dict[tuple, threading.Event] = {}
        self.memo_hits = 0
        self._lock = threading.Lock()
        self.calls = 0

    # ------------------------------------------------------------------
    @property
    def fun(self) -> A.Fun:
        return self.compiled.fun

    @property
    def pipeline(self) -> str:
        return self.compiled.pipeline

    def shape_key(self, inputs: Mapping[str, object]) -> str:
        """The concrete shape class of one request's inputs."""
        parts = []
        for name in sorted(inputs):
            v = inputs[name]
            shape = getattr(v, "shape", None)
            parts.append(
                f"{name}:{shape}" if shape is not None else f"{name}={v!r}"
            )
        return "|".join(parts)

    def _native(self, want: Optional[bool]):
        """Resolve the per-call native preference to an engine (or None).

        ``None`` means "use it if available"; availability is probed
        once per program (honors ``REPRO_NATIVE`` and compiler
        auto-detection, warning once when native was wanted but no
        compiler exists)."""
        if want is False:
            return None
        with self._lock:
            if not self._native_probed:
                self._native_probed = True
                from repro.backend import maybe_engine

                self._native_engine = maybe_engine(self._native_plans)
        return self._native_engine

    def _request_key(
        self, inputs: Mapping[str, object], vectorize: bool
    ) -> tuple:
        """Content identity of one request (exact: hashes array bytes)."""
        h = hashlib.sha256()
        for name in sorted(inputs):
            v = inputs[name]
            h.update(name.encode())
            if isinstance(v, np.ndarray):
                h.update(str(v.shape).encode())
                h.update(v.dtype.str.encode())
                h.update(np.ascontiguousarray(v).tobytes())
            else:
                h.update(repr(v).encode())
        return (h.hexdigest(), vectorize)

    @staticmethod
    def _fresh_response(
        entry: Tuple[List[object], ExecStats],
    ) -> Tuple[List[object], ExecStats]:
        outs, stats = entry
        return (
            [o.copy() if isinstance(o, np.ndarray) else o for o in outs],
            copy.deepcopy(stats),
        )

    # ------------------------------------------------------------------
    def run(
        self,
        inputs: Mapping[str, object],
        vectorize: bool = True,
        memoize: Optional[bool] = None,
        native: Optional[bool] = None,
    ) -> Tuple[List[object], ExecStats]:
        """Execute (or recall) one request against pooled buffers.

        Inputs are read, never mutated (the executor copies array
        parameters into leased buffers).  Outputs are materialized NumPy
        arrays/scalars owned by the caller.  The returned
        :class:`ExecStats` carries ``pool_hits``/``pool_misses`` and the
        warm/cold timing pair; on a response-memo hit it is a copy of
        the producing run's stats (signature-identical by construction)
        restamped with this call's wall clock.
        """
        t0 = time.perf_counter()
        engine = self._native(native) if vectorize else None
        use_memo = self.memoize if memoize is None else memoize
        key = (
            self._request_key(inputs, vectorize) + (engine is not None,)
            if use_memo
            else None
        )
        leader = False
        while key is not None:
            with self._lock:
                entry = self._memo.get(key)
                if entry is not None:
                    self._memo.move_to_end(key)
                    self.memo_hits += 1
                    self.calls += 1
                    outs, stats = self._fresh_response(entry)
                    # A recalled response acquired no buffers.
                    stats.pool_hits = stats.pool_misses = 0
                    stats.warm_call_seconds = time.perf_counter() - t0
                    stats.cold_compile_seconds = self.cold_compile_seconds
                    return outs, stats
                ev = self._inflight.get(key)
                if ev is None:
                    # This call produces the response; duplicates wait.
                    self._inflight[key] = threading.Event()
                    leader = True
            if leader:
                break
            ev.wait()
            # The leader finished (or failed): re-check the memo; on a
            # store the loop returns the recalled response, otherwise
            # this call becomes the next leader and executes itself.
        try:
            outs, stats = self._execute(inputs, vectorize, engine)
        finally:
            if leader:
                with self._lock:
                    ev = self._inflight.pop(key, None)
                if ev is not None:
                    ev.set()
        if key is not None:
            with self._lock:
                if key not in self._memo:
                    self._memo[key] = self._fresh_response((outs, stats))
                    while len(self._memo) > self.MEMO_ENTRIES:
                        self._memo.popitem(last=False)
        stats.warm_call_seconds = time.perf_counter() - t0
        stats.cold_compile_seconds = self.cold_compile_seconds
        with self._lock:
            self.calls += 1
        return outs, stats

    def _execute(
        self, inputs: Mapping[str, object], vectorize: bool, engine=None
    ) -> Tuple[List[object], ExecStats]:
        """One real pooled execution (the memo's production path)."""
        with self.pool.lease() as lease:
            ex = MemExecutor(
                self.compiled.fun,
                pool=lease,
                offs_cache=self._offs_cache,
                vec_plans=self._vec_plans,
                vectorize=vectorize,
                native=engine,
            )
            vals, stats = ex.run(**dict(inputs))
            if engine is not None:
                stats.codegen_seconds = engine.codegen_seconds
            outs = [self._materialize(ex, v) for v in vals]
            skey = self.shape_key(inputs)
            if self.pool.plan(skey) is None:
                # First execution at this shape class: freeze the
                # allocation plan so the pool can be provisioned for a
                # worker fleet (reserve) and hits become deterministic.
                self.pool.note_plan(skey, lease.manifest())
        return outs, stats

    def reserve(self, inputs: Mapping[str, object], workers: int) -> int:
        """Provision the pool for ``workers`` concurrent leases of the
        allocation plan at this input shape class (runs one request to
        materialize the plan -- and warm the response memo -- if
        needed)."""
        skey = self.shape_key(inputs)
        need = self.pool.plan(skey) is None
        if not need and self.memoize:
            key = self._request_key(inputs, True) + (
                self._native(None) is not None,
            )
            with self._lock:
                need = key not in self._memo
        if need:
            self.run(inputs)
        return self.pool.reserve(skey, workers)

    @staticmethod
    def _materialize(ex: MemExecutor, val):
        if isinstance(val, RuntimeArray):
            buf = ex.mem[val.mem]
            assert isinstance(buf, np.ndarray)
            return buf[ex._offsets(val)]
        return val


def compile(
    fun: A.Fun,
    pipeline: Optional[str] = None,
    short_circuit: bool = True,
    enable_splitting: bool = True,
    typecheck: bool = True,
    verify: bool = False,
    fuse: bool = True,
    reuse: bool = True,
    cache=None,
    memoize: bool = True,
) -> Program:
    """Compile (or fetch from cache) and wrap into a :class:`Program`."""
    compiled, state, cold_seconds = compile_cached(
        fun,
        short_circuit=short_circuit,
        enable_splitting=enable_splitting,
        typecheck=typecheck,
        verify=verify,
        fuse=fuse,
        reuse=reuse,
        pipeline=pipeline,
        cache=cache,
        _want_state=True,
    )
    return Program(compiled, cache_state=state,
                   cold_compile_seconds=cold_seconds, memoize=memoize)
