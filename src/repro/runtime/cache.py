"""The persistent compile cache: repeat compiles are O(lookup).

Every optimization in this reproduction assumes a compile step whose
cost is amortized over many executions; this module supplies the
amortization.  A compilation is identified by a :class:`CacheKey` of

* the **program hash** -- SHA-256 of the pretty-printed source IR (name,
  params, body), which is a canonical rendering: two structurally
  identical ``Fun`` objects built independently hash equal;
* the **pipeline** -- the preset label plus the resolved flag triple, so
  ``sc+fuse`` and ``full`` never collide even if presets are re-labelled;
* the **symbolic-shape class** -- the parameter type row (e.g.
  ``[n][n]f32, i64``); compiles are fully symbolic in shapes, so this is
  the granularity at which a compiled artifact is reusable;
* the **assumptions** -- the function's dataset invariants, rendered
  canonically.  They are a *separate* key component on purpose: two
  compiles of the same body under different :class:`~repro.symbolic`
  assumption sets produce different proofs (and potentially different
  IR), and the pre-runtime pipeline only kept them apart by the
  ``id()``-keyed :class:`~repro.lmad.ProverPool` entry of each fresh
  compile.  Keying the cache on assumptions makes the separation
  explicit and structural;
* the **option fingerprint** -- ``enable_splitting`` / ``typecheck`` /
  ``verify``, each of which changes observable compile behavior.

:class:`ProgramCache` layers an in-process LRU over an on-disk store
(default ``benchmarks/results/.progcache/``).  Disk entries embed
:data:`CACHE_VERSION` and the package version; bumping either silently
invalidates every stale entry.  A disk hit deserializes the compiled
memory IR and rebuilds a :class:`~repro.compiler.CompiledFun` whose
trace contains a single ``progcache`` record -- every pass skipped --
while the IR pretty-print is byte-identical to a cold compile's.

The in-process layer is always safe to enable; the disk layer is opt-in
(``REPRO_PROGCACHE=disk`` or ``cache="disk"``) because test suites that
monkeypatch pass internals need compilations to be re-runnable.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.compiler import CompiledFun
    from repro.ir import ast as A

#: Bump to invalidate every on-disk entry (IR/pickle format changes).
CACHE_VERSION = 1

#: Package version baked into disk entries (a version bump invalidates).
REPRO_VERSION = "0.1.0"

#: Default on-disk location, relative to the working directory.
DEFAULT_DISK_DIR = Path("benchmarks") / "results" / ".progcache"

#: Environment override: ``0``/``off`` disables caching entirely,
#: ``mem`` (default) enables the in-process LRU, ``disk`` adds the
#: on-disk layer.
CACHE_ENV = "REPRO_PROGCACHE"

#: Cache states reported by :meth:`ProgramCache.get_or_compile`.
COLD, MEM_HIT, DISK_HIT = "cold", "memory", "disk"


# ----------------------------------------------------------------------
# Key construction
# ----------------------------------------------------------------------
def source_fingerprint(fun: "A.Fun") -> str:
    """SHA-256 of the canonical source rendering (name, params, body)."""
    from repro.ir.pretty import pretty_fun

    return hashlib.sha256(pretty_fun(fun).encode()).hexdigest()


def shape_class(fun: "A.Fun") -> str:
    """The symbolic-shape class: the parameter type row."""
    return ", ".join(str(p.type) for p in fun.params)


def assumptions_fingerprint(fun: "A.Fun") -> str:
    """Canonical rendering of the function's assumption set."""
    return "; ".join(
        f"{kind} {var} {expr}" for kind, var, expr in fun.assumptions
    )


@dataclass(frozen=True)
class CacheKey:
    """Identity of one compilation (see module docstring)."""

    source: str  # program hash (pretty-printed source IR)
    pipeline: str  # preset label + resolved flag triple
    shapes: str  # symbolic-shape class
    assumptions: str  # dataset invariants, canonical text
    options: str  # enable_splitting / typecheck / verify
    version: int = CACHE_VERSION

    def digest(self) -> str:
        blob = "\x00".join(
            (
                self.source,
                self.pipeline,
                self.shapes,
                self.assumptions,
                self.options,
                str(self.version),
                REPRO_VERSION,
            )
        )
        return hashlib.sha256(blob.encode()).hexdigest()


def make_key(
    fun: "A.Fun",
    label: str,
    short_circuit: bool,
    fuse: bool,
    reuse: bool,
    enable_splitting: bool,
    typecheck: bool,
    verify: bool,
) -> CacheKey:
    return CacheKey(
        source=source_fingerprint(fun),
        pipeline=f"{label}:sc={short_circuit},fuse={fuse},reuse={reuse}",
        shapes=shape_class(fun),
        assumptions=assumptions_fingerprint(fun),
        options=(
            f"splitting={enable_splitting},typecheck={typecheck},"
            f"verify={verify}"
        ),
    )


def cache_mode(requested=None) -> str:
    """Resolve a ``cache=`` argument against the environment default.

    ``None`` defers to :data:`CACHE_ENV`; ``False``/``"off"`` disables;
    ``True``/``"mem"`` means in-process only; ``"disk"`` adds the disk
    layer.
    """
    if requested is None:
        raw = os.environ.get(CACHE_ENV, "mem").strip().lower()
        if raw in ("0", "off", "false", "no"):
            return "off"
        return "disk" if raw == "disk" else "mem"
    if requested is False or requested == "off":
        return "off"
    if requested is True or requested == "mem":
        return "mem"
    if requested == "disk":
        return "disk"
    raise ValueError(f"unknown cache mode {requested!r}")


# ----------------------------------------------------------------------
# The cache
# ----------------------------------------------------------------------
class ProgramCache:
    """In-process LRU + optional on-disk layer of compiled programs."""

    def __init__(
        self,
        max_entries: int = 128,
        disk_dir: Optional[Path] = None,
    ) -> None:
        self.max_entries = max_entries
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        self._lock = threading.RLock()
        #: digest -> (CompiledFun, cold compile seconds)
        self._mem: "OrderedDict[str, Tuple[CompiledFun, float]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.disk_stores = 0
        self.disk_errors = 0

    # ------------------------------------------------------------------
    def get_or_compile(
        self,
        key: CacheKey,
        thunk: Callable[[], "CompiledFun"],
        disk: bool = False,
    ) -> Tuple["CompiledFun", str, float]:
        """Return ``(compiled, state, cold_compile_seconds)``.

        ``state`` is ``"memory"``, ``"disk"`` or ``"cold"``.  The cold
        compile time travels with the entry so warm callers can report
        amortization without recompiling.
        """
        digest = key.digest()
        with self._lock:
            entry = self._mem.get(digest)
            if entry is not None:
                self._mem.move_to_end(digest)
                self.hits += 1
                return entry[0], MEM_HIT, entry[1]
            self.misses += 1
        if disk:
            loaded = self._disk_load(digest)
            if loaded is not None:
                compiled, cold_seconds = loaded
                with self._lock:
                    self._remember(digest, compiled, cold_seconds)
                return compiled, DISK_HIT, cold_seconds
        compiled = thunk()
        cold_seconds = compiled.compile_seconds
        with self._lock:
            self._remember(digest, compiled, cold_seconds)
        if disk:
            self._disk_store(digest, key, compiled, cold_seconds)
        return compiled, COLD, cold_seconds

    def _remember(self, digest, compiled, cold_seconds) -> None:
        self._mem[digest] = (compiled, cold_seconds)
        self._mem.move_to_end(digest)
        while len(self._mem) > self.max_entries:
            self._mem.popitem(last=False)

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------
    def _disk_path(self, digest: str) -> Path:
        base = self.disk_dir if self.disk_dir is not None else DEFAULT_DISK_DIR
        return base / f"{digest}.pkl"

    def _disk_load(self, digest: str):
        path = self._disk_path(digest)
        try:
            if not path.exists():
                return None
            t0 = time.perf_counter()
            payload = pickle.loads(path.read_bytes())
            if (
                payload.get("cache_version") != CACHE_VERSION
                or payload.get("repro_version") != REPRO_VERSION
            ):
                return None
            load_seconds = time.perf_counter() - t0
        except Exception:
            self.disk_errors += 1
            return None
        self.disk_hits += 1
        return (
            _rebuild_compiled(payload, digest, load_seconds),
            float(payload.get("cold_compile_seconds", 0.0)),
        )

    def _disk_store(self, digest, key, compiled, cold_seconds) -> None:
        path = self._disk_path(digest)
        try:
            payload = {
                "cache_version": CACHE_VERSION,
                "repro_version": REPRO_VERSION,
                "key": key,
                "fun": compiled.fun,
                "pipeline": compiled.pipeline,
                "short_circuited": compiled.short_circuited,
                "sc_stats": compiled.sc_stats,
                "reuse_stats": compiled.reuse_stats,
                "fuse_stats": compiled.fuse_stats,
                "verify_reports": compiled.verify_reports,
                "cold_compile_seconds": cold_seconds,
                "cold_stage_seconds": dict(compiled.stage_seconds),
            }
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_bytes(blob)
            os.replace(tmp, path)
            self.disk_stores += 1
        except Exception:
            # A compiled payload that cannot be pickled (or a read-only
            # results directory) degrades to memory-only caching.
            self.disk_errors += 1

    # ------------------------------------------------------------------
    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._mem.clear()
            self.hits = self.misses = 0
            self.disk_hits = self.disk_stores = self.disk_errors = 0
        if disk:
            base = (
                self.disk_dir if self.disk_dir is not None else DEFAULT_DISK_DIR
            )
            if base.exists():
                for p in base.glob("*.pkl"):
                    try:
                        p.unlink()
                    except OSError:
                        pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._mem)


def _rebuild_compiled(payload, digest: str, load_seconds: float):
    """A :class:`CompiledFun` from a disk entry: one-record trace."""
    from repro.compiler import CompiledFun
    from repro.pipeline.trace import PassRecord, PipelineTrace

    fun = payload["fun"]
    trace = PipelineTrace(pipeline=payload["pipeline"], fun_name=fun.name)
    trace.records.append(
        PassRecord(
            kind="cache",
            name="progcache",
            key="progcache",
            seconds=load_seconds,
            detail={
                "state": DISK_HIT,
                "key": digest[:12],
                "cold_compile_seconds": payload.get(
                    "cold_compile_seconds", 0.0
                ),
                "passes_skipped": len(payload.get("cold_stage_seconds", {})),
            },
        )
    )
    return CompiledFun(
        fun,
        payload["short_circuited"],
        payload["sc_stats"],
        reuse_stats=payload["reuse_stats"],
        fuse_stats=payload["fuse_stats"],
        stage_seconds=trace.stage_seconds(),
        verify_reports=payload.get("verify_reports", {}),
        trace=trace,
        pipeline=payload["pipeline"],
    )


#: The process-wide cache instance (see :func:`program_cache`).
_GLOBAL = ProgramCache()


def program_cache() -> ProgramCache:
    return _GLOBAL
