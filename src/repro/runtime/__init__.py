"""repro.runtime: the compile-once, serve-many layer.

The compiler (:mod:`repro.compiler` / :mod:`repro.pipeline`) produces an
immutable artifact; this package makes producing it *rare* and running it
*cheap*:

* :class:`Program` (:mod:`~repro.runtime.program`) -- a compiled
  function plus its reusable runtime state: the frozen memory IR, the
  vectorized dispatch plan, the LMAD offset cache, and the coalesced
  allocation plan materialized into a :class:`BufferPool`;
* :class:`ProgramCache` (:mod:`~repro.runtime.cache`) -- the persistent
  compile cache (in-process LRU + opt-in disk layer) keyed by program
  hash, pipeline, symbolic-shape class, and assumptions;
* :class:`BufferPool` / :class:`PoolLease` (:mod:`~repro.runtime.pool`)
  -- pooled, zero-filled-on-demand buffers handed to the executor
  instead of per-call ``np.zeros``, with thread-safe per-run leases;
* :mod:`~repro.runtime.serve` -- the worker-pool serving harness behind
  ``python -m repro.serve`` (throughput, p50/p99 latency, warm-vs-cold
  amortization, pool hit rate).

``repro.compiler.compile_fun`` delegates here (:func:`compile_cached`),
so every existing call site is cache-hitting without change.
"""

from repro.runtime.cache import (
    CACHE_ENV,
    CACHE_VERSION,
    COLD,
    DISK_HIT,
    MEM_HIT,
    CacheKey,
    ProgramCache,
    assumptions_fingerprint,
    cache_mode,
    make_key,
    program_cache,
    shape_class,
    source_fingerprint,
)
from repro.runtime.pool import BufferPool, PoolLease
from repro.runtime.program import Program, compile, compile_cached  # noqa: A004


def clear_caches(disk: bool = False) -> None:
    """Reset the process-wide program cache (tests lean on this: the
    autouse fixture clears the memory layer so monkeypatch-seam tests
    always observe a genuine compilation)."""
    program_cache().clear(disk=disk)


__all__ = [
    "Program",
    "compile",
    "compile_cached",
    "BufferPool",
    "PoolLease",
    "ProgramCache",
    "program_cache",
    "clear_caches",
    "CacheKey",
    "make_key",
    "cache_mode",
    "source_fingerprint",
    "shape_class",
    "assumptions_fingerprint",
    "CACHE_ENV",
    "CACHE_VERSION",
    "COLD",
    "MEM_HIT",
    "DISK_HIT",
]
