"""The LMAD data type and its structural operations.

A q-dimensional LMAD ``t + {(n1:s1), ..., (nq:sq)}`` (paper eq. (1)) is an
offset expression ``t`` plus a sequence of dimensions, each with a
*cardinality* (number of points) and a *stride* (flat distance between two
consecutive points along that dimension).  All three components are symbolic
integer polynomials (:class:`repro.symbolic.SymExpr`), so a single LMAD value
can describe the accesses of a whole loop nest parametrically.

Two readings of the same value (paper sections II-B and IV-A):

* as an **index function** it maps the index tuple ``(y1..yq)`` to the flat
  offset ``t + sum yi*si`` (order of dimensions matters; negative strides
  mean reversal);
* as an **abstract set** it denotes the union of all reachable offsets
  (order does not matter, and negative strides can be normalized away).

Structural operations here are exact and purely syntactic.  Everything that
needs an assumption context (positivity of strides, equality of sizes) takes
a :class:`repro.symbolic.prove.Prover`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.symbolic import Prover, SymExpr, sym
from repro.symbolic.expr import ExprLike


@dataclass(frozen=True)
class LmadDim:
    """One LMAD dimension: ``(shape : stride)``."""

    shape: SymExpr
    stride: SymExpr

    def __post_init__(self):
        object.__setattr__(self, "shape", sym(self.shape))
        object.__setattr__(self, "stride", sym(self.stride))

    def substitute(self, mapping: Mapping[str, ExprLike]) -> "LmadDim":
        return LmadDim(self.shape.substitute(mapping), self.stride.substitute(mapping))

    def __str__(self) -> str:
        return f"({self.shape} : {self.stride})"


def dim(shape: ExprLike, stride: ExprLike) -> LmadDim:
    """Convenience constructor for a dimension."""
    return LmadDim(sym(shape), sym(stride))


#: A triplet slice entry: (start, count, step) in *index space* of one
#: dimension, mirroring the paper's ``A[start : count : step]`` notation.
Triplet = Tuple[ExprLike, ExprLike, ExprLike]


@dataclass(frozen=True)
class Lmad:
    """An LMAD: symbolic offset plus dimensions, outermost first."""

    offset: SymExpr
    dims: Tuple[LmadDim, ...]

    def __post_init__(self):
        object.__setattr__(self, "offset", sym(self.offset))
        object.__setattr__(self, "dims", tuple(self.dims))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def row_major(shape: Sequence[ExprLike], offset: ExprLike = 0) -> "Lmad":
        """R(d1..dq): row-major layout, innermost dimension stride 1."""
        shape = [sym(s) for s in shape]
        dims: List[LmadDim] = []
        stride: SymExpr = sym(1)
        for extent in reversed(shape):
            dims.append(LmadDim(extent, stride))
            stride = stride * extent
        return Lmad(sym(offset), tuple(reversed(dims)))

    @staticmethod
    def col_major(shape: Sequence[ExprLike], offset: ExprLike = 0) -> "Lmad":
        """C(d1..dq): column-major layout, outermost dimension stride 1."""
        shape = [sym(s) for s in shape]
        dims: List[LmadDim] = []
        stride: SymExpr = sym(1)
        for extent in shape:
            dims.append(LmadDim(extent, stride))
            stride = stride * extent
        return Lmad(sym(offset), tuple(dims))

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def shape(self) -> Tuple[SymExpr, ...]:
        return tuple(d.shape for d in self.dims)

    def size(self) -> SymExpr:
        """Number of points described (product of cardinalities)."""
        total: SymExpr = sym(1)
        for d in self.dims:
            total = total * d.shape
        return total

    def free_vars(self) -> frozenset:
        out = set(self.offset.free_vars())
        for d in self.dims:
            out |= d.shape.free_vars()
            out |= d.stride.free_vars()
        return frozenset(out)

    def apply(self, indices: Sequence[ExprLike]) -> SymExpr:
        """Index-function application: flat offset of ``self[indices]``."""
        if len(indices) != self.rank:
            raise ValueError(
                f"rank mismatch: LMAD has rank {self.rank}, got "
                f"{len(indices)} indices"
            )
        total = self.offset
        for idx, d in zip(indices, self.dims):
            total = total + sym(idx) * d.stride
        return total

    # ------------------------------------------------------------------
    # Index-space transformations (paper section IV-B)
    # ------------------------------------------------------------------
    def permute(self, perm: Sequence[int]) -> "Lmad":
        """Permute dimensions; ``perm[i]`` is the source of new dim ``i``."""
        if sorted(perm) != list(range(self.rank)):
            raise ValueError(f"not a permutation of rank {self.rank}: {perm}")
        return Lmad(self.offset, tuple(self.dims[p] for p in perm))

    def transpose(self) -> "Lmad":
        """Reverse the dimension order (full transposition)."""
        return Lmad(self.offset, tuple(reversed(self.dims)))

    def slice_triplets(self, triplets: Sequence[Triplet]) -> "Lmad":
        """Apply a per-dimension triplet slice ``(start, count, step)``.

        The new offset accumulates ``start_k * stride_k``; each dimension
        becomes ``(count_k : step_k * stride_k)``.  Negative steps express
        reversal.  Rank is preserved (use :meth:`fix_dim` to drop one).
        """
        if len(triplets) != self.rank:
            raise ValueError("need one triplet per dimension")
        offset = self.offset
        dims: List[LmadDim] = []
        for (start, count, step), d in zip(triplets, self.dims):
            offset = offset + sym(start) * d.stride
            dims.append(LmadDim(sym(count), sym(step) * d.stride))
        return Lmad(offset, tuple(dims))

    def fix_dim(self, k: int, index: ExprLike) -> "Lmad":
        """Fix dimension ``k`` at ``index``, dropping it from the rank."""
        d = self.dims[k]
        offset = self.offset + sym(index) * d.stride
        dims = self.dims[:k] + self.dims[k + 1 :]
        return Lmad(offset, dims)

    def reverse(self, k: int) -> "Lmad":
        """Reverse dimension ``k`` (index function reading; paper footnote 13)."""
        d = self.dims[k]
        offset = self.offset + (d.shape - 1) * d.stride
        dims = list(self.dims)
        dims[k] = LmadDim(d.shape, -d.stride)
        return Lmad(offset, tuple(dims))

    def compose_slice(self, slice_lmad: "Lmad") -> "Lmad":
        """Apply a generalized LMAD slice to a rank-1 LMAD.

        ``self`` must be rank 1 (a flat view with stride ``s`` and offset
        ``t``); ``slice_lmad`` selects flat positions of that view, so the
        result is ``t + slice.offset*s + {(n_k : s_k * s)}``.  This is how
        the NW anti-diagonal slices of paper section III-B are resolved to
        memory.
        """
        if self.rank != 1:
            raise ValueError(
                "LMAD slices apply to rank-1 (flat) arrays; got rank "
                f"{self.rank}"
            )
        s = self.dims[0].stride
        offset = self.offset + slice_lmad.offset * s
        dims = tuple(LmadDim(d.shape, d.stride * s) for d in slice_lmad.dims)
        return Lmad(offset, dims)

    # ------------------------------------------------------------------
    # Reshaping (exact cases; general case handled at IndexFn level)
    # ------------------------------------------------------------------
    def coalesce_all(self, prover: Prover) -> Optional["Lmad"]:
        """Merge all dimensions into one if the layout is row-major-compact.

        Adjacent dims ``(n_out : s_out), (n_in : s_in)`` merge when
        ``s_out == n_in * s_in``.  Returns a rank-1 LMAD or ``None``.
        Rank-0 LMADs coalesce to a single unit dimension.
        """
        if self.rank == 0:
            return Lmad(self.offset, (LmadDim(sym(1), sym(1)),))
        merged = self.dims[-1]
        for d in reversed(self.dims[:-1]):
            if prover.eq(d.stride, merged.shape * merged.stride):
                merged = LmadDim(d.shape * merged.shape, merged.stride)
            elif prover.eq(d.shape, sym(1)):
                merged = LmadDim(merged.shape, merged.stride)
            elif prover.eq(merged.shape, sym(1)):
                merged = LmadDim(d.shape, d.stride)
            else:
                return None
        return Lmad(self.offset, (merged,))

    def split_into(
        self, new_shape: Sequence[ExprLike], prover: Prover
    ) -> Optional["Lmad"]:
        """Reshape a rank-1 LMAD to ``new_shape`` (row-major within the dim).

        Requires the rank-1 size to equal the product of ``new_shape``;
        conservatively returns ``None`` when that cannot be proven.
        """
        if self.rank != 1:
            return None
        base = self.dims[0]
        total: SymExpr = sym(1)
        for s in new_shape:
            total = total * sym(s)
        if not prover.eq(base.shape, total):
            return None
        dims: List[LmadDim] = []
        stride = base.stride
        for extent in reversed([sym(s) for s in new_shape]):
            dims.append(LmadDim(extent, stride))
            stride = stride * extent
        return Lmad(self.offset, tuple(reversed(dims)))

    def reshape(
        self, new_shape: Sequence[ExprLike], prover: Prover
    ) -> Optional["Lmad"]:
        """Full reshape when expressible as a single LMAD, else ``None``."""
        flat = self.coalesce_all(prover)
        if flat is None:
            return None
        return flat.split_into(new_shape, prover)

    # ------------------------------------------------------------------
    # Abstract-set helpers
    # ------------------------------------------------------------------
    def normalize_positive(self, prover: Prover) -> Optional["Lmad"]:
        """Rewrite as an equal *abstract set* with provably non-negative strides.

        A negative-stride dim ``(n : s)`` covers the same points as
        ``(n : -s)`` starting at ``offset + (n-1)*s``.  Returns ``None`` when
        some stride's sign cannot be proven (conservative failure).
        """
        offset = self.offset
        dims: List[LmadDim] = []
        for d in self.dims:
            if prover.nonneg(d.stride):
                dims.append(d)
            elif prover.nonneg(-d.stride):
                offset = offset + (d.shape - 1) * d.stride
                dims.append(LmadDim(d.shape, -d.stride))
            else:
                return None
        return Lmad(offset, tuple(dims))

    def drop_unit_dims(self, prover: Prover) -> "Lmad":
        """Remove dimensions with provably-1 cardinality (set semantics)."""
        dims = tuple(
            d for d in self.dims if not prover.eq(d.shape, sym(1))
        )
        return Lmad(self.offset, dims)

    def max_offset(self) -> SymExpr:
        """Largest reachable flat offset, assuming non-negative strides."""
        total = self.offset
        for d in self.dims:
            total = total + (d.shape - 1) * d.stride
        return total

    def is_contiguous(self, prover: Prover) -> bool:
        """Does this LMAD cover a dense range ``[offset, offset+size)``?"""
        flat = self.coalesce_all(prover)
        return flat is not None and prover.eq(flat.dims[0].stride, sym(1))

    # ------------------------------------------------------------------
    # Substitution / evaluation
    # ------------------------------------------------------------------
    def substitute(self, mapping: Mapping[str, ExprLike]) -> "Lmad":
        return Lmad(
            self.offset.substitute(mapping),
            tuple(d.substitute(mapping) for d in self.dims),
        )

    def evaluate(self, env: Mapping[str, int]) -> "Lmad":
        """Instantiate all variables to integers (still an Lmad, now constant)."""
        mapping = {v: env[v] for v in self.free_vars()}
        return self.substitute(mapping)

    def concrete_shape(self, env: Mapping[str, int]) -> Tuple[int, ...]:
        out = []
        for d in self.dims:
            val = d.shape.substitute(env).as_int()
            if val is None:
                raise ValueError(f"shape {d.shape} not concrete under {env}")
            out.append(val)
        return tuple(out)

    def enumerate_offsets(self, env: Mapping[str, int]) -> List[int]:
        """All flat offsets, concretely (testing / dynamic checks only)."""
        inst = self.evaluate(dict(env))
        offsets = [inst.offset.as_int()]
        if any(o is None for o in offsets):
            raise ValueError("LMAD not concrete")
        for d in inst.dims:
            n, s = d.shape.as_int(), d.stride.as_int()
            if n is None or s is None:
                raise ValueError("LMAD not concrete")
            offsets = [o + i * s for o in offsets for i in range(n)]
        return offsets

    def __str__(self) -> str:
        dims = ", ".join(str(d) for d in self.dims)
        return f"{self.offset} + {{{dims}}}"


def lmad(
    offset: ExprLike, dims: Iterable[Union[LmadDim, Tuple[ExprLike, ExprLike]]]
) -> Lmad:
    """Convenience constructor: ``lmad(t, [(n1, s1), (n2, s2)])``."""
    converted = tuple(
        d if isinstance(d, LmadDim) else LmadDim(sym(d[0]), sym(d[1]))
        for d in dims
    )
    return Lmad(sym(offset), converted)
