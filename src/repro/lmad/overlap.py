"""Static non-overlap test for a pair of LMADs (paper fig. 8, section V-C).

The test is a *sufficient condition*: ``True`` means the two access sets are
provably disjoint; ``False`` means "could not prove", never "definitely
overlapping".  The short-circuiting pass only acts on ``True``.

Theorem (Non-Overlap).  Given two sums of strided intervals with matching
strides ``I1 = sum_j [l1_j..u1_j]*s_j`` and ``I2 = sum_j [l2_j..u2_j]*s_j``
with ``s_j > 0`` and all lower bounds non-negative, then ``I1 cap I2 = {}``
if:

* both have no *overlapping dimensions*, i.e. sorted by ascending stride,
  ``s_i > sum_{j<i} u_j * s_j`` for each side (every dimension's stride
  jumps past everything the smaller dimensions can reach -- a positional
  number system argument); and
* some dimension's multiplier intervals are disjoint:
  ``[l1_j..u1_j] cap [l2_j..u2_j] = {}``.

When a dimension *is* overlapping, the paper's extension (vs. Hoeflinger et
al.) splits the offending interval ``[l..u]`` into ``[l..u-1]`` union the
last point ``{u}``, re-distributes the fixed contribution ``u*s`` into the
other dimensions' bounds, and recurses on all pair combinations -- this is
what makes the NW proof (paper fig. 9) go through.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.lmad.interval import (
    SumOfIntervals,
    StridedInterval,
    distribute_offset,
    pair_to_sums_of_intervals,
    stride_sort_key,
)
from repro.lmad.lmad import Lmad
from repro.symbolic import Prover, sym


@dataclass
class NonOverlapChecker:
    """Reusable checker bound to a prover; records a proof trace for demos."""

    prover: Prover
    max_split_depth: int = 3
    #: When False, reproduces the baseline test of Hoeflinger et al. [9]
    #: (no dimension splitting) -- used by the ablation benchmark.
    enable_splitting: bool = True
    #: Human-readable trace of the most recent proof attempt.
    trace: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    def check(self, l1: Lmad, l2: Lmad) -> bool:
        """Are the abstract sets of ``l1`` and ``l2`` provably disjoint?"""
        self.trace = []
        if self._trivially_empty(l1) or self._trivially_empty(l2):
            self.trace.append("one side is empty: trivially disjoint")
            return True
        pair = pair_to_sums_of_intervals(l1, l2, self.prover)
        if pair is None:
            self.trace.append(
                "conversion to matching sums-of-intervals failed: cannot prove"
            )
            return False
        i1, i2 = pair
        self.trace.append(f"I1 = {i1}")
        self.trace.append(f"I2 = {i2}")
        return self._check(i1, i2, self.max_split_depth)

    def _trivially_empty(self, l: Lmad) -> bool:
        return any(
            self.prover.nonneg(-d.shape) for d in l.dims
        )  # some cardinality <= 0

    # ------------------------------------------------------------------
    def _check(self, i1: SumOfIntervals, i2: SumOfIntervals, depth: int) -> bool:
        bad1 = self._first_overlapping_dim(i1)
        bad2 = self._first_overlapping_dim(i2)
        if bad1 is None and bad2 is None:
            return self._disjoint_on_some_dim(i1, i2)
        if not self.enable_splitting or depth <= 0:
            self.trace.append(
                "overlapping dimensions remain and splitting unavailable: "
                "cannot prove"
            )
            return False

        parts1 = self._split(i1, bad1) if bad1 is not None else [i1]
        parts2 = self._split(i2, bad2) if bad2 is not None else [i2]
        if parts1 is None or parts2 is None:
            self.trace.append("dimension split failed: cannot prove")
            return False
        if bad1 is not None:
            self.trace.append(
                f"split I1 dim {bad1} -> {' | '.join(map(str, parts1))}"
            )
        if bad2 is not None:
            self.trace.append(
                f"split I2 dim {bad2} -> {' | '.join(map(str, parts2))}"
            )
        return all(
            self._check(p1, p2, depth - 1) for p1 in parts1 for p2 in parts2
        )

    # ------------------------------------------------------------------
    def _first_overlapping_dim(self, soi: SumOfIntervals) -> Optional[int]:
        """Index of a dimension to split, or None if all non-overlapping.

        Dimension ``i`` (ascending stride order) is non-overlapping when
        ``s_i > sum_{j<i} u_j*s_j``.  On failure we return the inner
        dimension with the largest contribution -- splitting it peels off
        its topmost point, which is what unblocks the NW/LUD proofs.
        """
        ivs = soi.intervals
        for i in range(1, len(ivs)):
            span = sym(0)
            for j in range(i, 0, -1):
                span = span + ivs[j - 1].span()
            if not self.prover.pos(ivs[i].stride - span):
                # Find the largest-stride inner dim that actually contributes.
                for j in range(i - 1, -1, -1):
                    if not self.prover.eq(ivs[j].hi, ivs[j].lo):
                        return j
                    if not ivs[j].span().is_zero() and not self.prover.eq_zero(
                        ivs[j].span()
                    ):
                        return j
                return i - 1
        return None

    def _split(
        self, soi: SumOfIntervals, k: int
    ) -> Optional[List[SumOfIntervals]]:
        """Split dim ``k``: ``[l..u] -> [l..u-1]  union  {u}``.

        The point part fixes dim ``k`` at 0 and redistributes its value
        ``u*s`` into the other dimensions (translation with non-negative
        shifts only, to preserve the theorem's preconditions).
        """
        iv = soi.intervals[k]
        # The "rest" part [l .. u-1] may be empty (then it denotes the empty
        # set, trivially disjoint from everything): keep it unless provably
        # empty.  All theorem checks remain sound for possibly-empty
        # intervals because upper bounds only ever over-approximate.
        rest: Optional[SumOfIntervals] = soi.with_interval(
            k, StridedInterval(iv.lo, iv.hi - 1, iv.stride)
        )
        if self.prover.lt(iv.hi - 1, iv.lo):
            rest = None

        point_value = iv.hi * iv.stride
        strides = list(soi.strides())
        masked = [
            s if j != k else sym(0) for j, s in enumerate(strides)
        ]  # never redistribute onto the split dim itself
        dist = distribute_offset(point_value, masked, self.prover)
        if dist is None:
            return None
        shifts_pos, shifts_neg = dist
        if shifts_neg:
            return None  # translation must stay on this side
        ivs = list(soi.intervals)
        ivs[k] = StridedInterval(sym(0), sym(0), iv.stride)
        for j, amount in shifts_pos.items():
            ivs[j] = ivs[j].shifted(amount)
        point = SumOfIntervals(tuple(ivs))
        return [point] if rest is None else [rest, point]

    # ------------------------------------------------------------------
    def _disjoint_on_some_dim(
        self, i1: SumOfIntervals, i2: SumOfIntervals
    ) -> bool:
        for k, (a, b) in enumerate(zip(i1.intervals, i2.intervals)):
            if self.prover.pos(b.lo - a.hi) or self.prover.pos(a.lo - b.hi):
                self.trace.append(
                    f"dim {k} (stride {a.stride}): [{a.lo}..{a.hi}] and "
                    f"[{b.lo}..{b.hi}] are disjoint -> sets disjoint"
                )
                return True
        self.trace.append("no dimension with disjoint intervals: cannot prove")
        return False


def lmads_nonoverlapping(
    l1: Lmad,
    l2: Lmad,
    prover: Optional[Prover] = None,
    enable_splitting: bool = True,
) -> bool:
    """Convenience wrapper: prove that two LMAD access sets are disjoint."""
    checker = NonOverlapChecker(
        prover if prover is not None else Prover(),
        enable_splitting=enable_splitting,
    )
    return checker.check(l1, l2)


@dataclass
class TieredChecker(NonOverlapChecker):
    """Structural non-overlap test with a polyhedral fallback tier.

    ``check`` first runs the structural theorem (fig. 8 + splitting); on
    failure it re-asks the same question as relation emptiness through a
    :class:`~repro.isl.PolyEngine` and accepts only an exact ``EMPTY``
    verdict.  Every query reports its *deciding tier* -- ``structural``,
    ``polyhedral``, or ``unknown`` -- to the owning :class:`ProverPool`,
    which tallies per client pass and keeps a bounded replayable log.
    """

    pool: Optional["ProverPool"] = None
    engine: Optional[object] = None  # a repro.isl.PolyEngine

    def check(self, l1: Lmad, l2: Lmad) -> bool:
        structural = NonOverlapChecker.check(self, l1, l2)
        result, tier = structural, "structural" if structural else "unknown"
        if not structural and self.engine is not None:
            from repro.isl.emptiness import Verdict

            verdict = self.engine.accesses_disjoint(l1, l2)
            if verdict is Verdict.EMPTY:
                self.trace.append(
                    "polyhedral fallback: overlap set proven empty"
                )
                result, tier = True, "polyhedral"
            else:
                self.trace.append(
                    f"polyhedral fallback inconclusive ({verdict.name.lower()})"
                )
        if self.pool is not None:
            self.pool.record_query(
                self.prover.ctx, l1, l2, structural, tier, result
            )
        return result


@dataclass
class QueryRecord:
    """One logged disjointness query, replayable by the overlap audit."""

    client: str
    ctx: object
    l1: Lmad
    l2: Lmad
    structural: bool
    tier: str
    result: bool


class ProverPool:
    """Memoized :class:`Prover`/:class:`TieredChecker` pairs per context.

    One :class:`~repro.symbolic.Prover` per assumption :class:`Context`
    object, shared across every query issued against that context, so the
    prover's memo table amortizes over all clients instead of being
    rebuilt per query batch.  A pool owned by a compilation (see
    :class:`repro.pipeline.CompileContext`) extends the amortization
    across *passes*: short-circuiting, fusion and reuse all consult the
    same pool, and queries against the compilation's shared root context
    hit memos populated by earlier passes.

    Entries are keyed by ``id(ctx)`` and hold a strong reference to the
    context so the key cannot be recycled; a rebuilt context is a new
    object and transparently gets a fresh entry.  Contexts may gain facts
    after registration (passes ``define`` scalar SSA equalities as they
    walk) -- that only ever adds information, so memoized ``True``
    answers stay sound and ``False`` answers stay conservative, exactly
    as for a long-lived :class:`Prover` today.

    The memo tables are LRU-bounded (``max_entries`` contexts): analyses
    that walk many short-lived extended contexts (races, per-loop sc
    bodies) no longer grow the pool without bound.  ``hits``/``misses``
    count memo-table lookups and surface in the PipelineTrace.

    Checkers are additionally keyed by their ``enable_splitting`` flag
    (the prover itself is splitting-agnostic and shared between both
    flavors).  Checkers are :class:`TieredChecker` instances wired to a
    pooled polyhedral engine, so every pool client transparently gets the
    fallback tier; per-client deciding-tier tallies accumulate in
    ``tiers`` and the last ``log_cap`` queries in ``query_log``.
    """

    def __init__(self, max_entries: int = 64, log_cap: int = 4096) -> None:
        self.max_entries = max_entries
        self.log_cap = log_cap
        self._provers: "OrderedDict" = OrderedDict()
        self._checkers: "OrderedDict" = OrderedDict()
        self._engines: "OrderedDict" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self._client = "?"
        #: client name -> {"structural": n, "polyhedral": n, "unknown": n}
        self.tiers: Dict[str, Dict[str, int]] = {}
        self.query_log: List[QueryRecord] = []
        self.log_dropped = 0

    def __len__(self) -> int:
        return len(self._provers)

    # -- client bookkeeping --------------------------------------------
    def set_client(self, name: str) -> None:
        """Name the pass issuing subsequent queries (for tier tallies)."""
        self._client = name

    def record_query(
        self, ctx, l1: Lmad, l2: Lmad, structural: bool, tier: str,
        result: bool,
    ) -> None:
        tally = self.tiers.setdefault(
            self._client, {"structural": 0, "polyhedral": 0, "unknown": 0}
        )
        tally[tier] = tally.get(tier, 0) + 1
        if len(self.query_log) < self.log_cap:
            self.query_log.append(
                QueryRecord(self._client, ctx, l1, l2, structural, tier, result)
            )
        else:
            self.log_dropped += 1

    def record_tier(self, tier: str) -> None:
        """Tally a query decided outside a checker (e.g. injectivity)."""
        tally = self.tiers.setdefault(
            self._client, {"structural": 0, "polyhedral": 0, "unknown": 0}
        )
        tally[tier] = tally.get(tier, 0) + 1

    def tier_totals(self) -> Dict[str, int]:
        total = {"structural": 0, "polyhedral": 0, "unknown": 0}
        for tally in self.tiers.values():
            for k, v in tally.items():
                total[k] = total.get(k, 0) + v
        return total

    # -- pooled objects ------------------------------------------------
    def _touch(self, table: "OrderedDict", key) -> None:
        table.move_to_end(key)

    def _evict(self) -> None:
        while len(self._provers) > self.max_entries:
            evicted, _ = self._provers.popitem(last=False)
            for key in [k for k in self._checkers if k[0] == evicted]:
                del self._checkers[key]
            self._engines.pop(evicted, None)

    def prover_for(self, ctx) -> Prover:
        """The pooled prover for ``ctx`` (created on first use)."""
        ent = self._provers.get(id(ctx))
        if ent is None or ent[0] is not ctx:
            self.misses += 1
            ent = (ctx, Prover(ctx))
            self._provers[id(ctx)] = ent
            self._evict()
        else:
            self.hits += 1
        self._touch(self._provers, id(ctx))
        return ent[1]

    def engine_for(self, ctx):
        """The pooled polyhedral engine for ``ctx``.

        Returns ``None`` only if :mod:`repro.isl` is unavailable (it is
        part of this tree, so in practice: never).
        """
        ent = self._engines.get(id(ctx))
        if ent is None or ent[0] is not ctx:
            from repro.isl.engine import PolyEngine

            self.misses += 1
            ent = (ctx, PolyEngine(self.prover_for(ctx)))
            self._engines[id(ctx)] = ent
        else:
            self.hits += 1
        return ent[1]

    def checker_for(
        self, ctx, enable_splitting: bool = True
    ) -> "TieredChecker":
        """The pooled tiered non-overlap checker for ``ctx``."""
        key = (id(ctx), enable_splitting)
        ent = self._checkers.get(key)
        if ent is None or ent[0] is not ctx:
            self.misses += 1
            checker = TieredChecker(
                self.prover_for(ctx),
                enable_splitting=enable_splitting,
                pool=self,
                engine=self.engine_for(ctx),
            )
            ent = (ctx, checker)
            self._checkers[key] = ent
        else:
            self.hits += 1
        return ent[1]

    def pair_for(
        self, ctx, enable_splitting: bool = True
    ) -> "tuple[Prover, NonOverlapChecker]":
        """(prover, checker) for ``ctx`` -- the common client shape."""
        checker = self.checker_for(ctx, enable_splitting)
        return checker.prover, checker

    # -- tiered injectivity --------------------------------------------
    def injective(self, ctx, l: Lmad) -> bool:
        """Tiered injectivity: structural test, then relation emptiness.

        The polyhedral form asks whether two *distinct* index tuples can
        map to the same flat offset; an exact EMPTY on every distinctness
        piece proves injectivity.
        """
        prover = self.prover_for(ctx)
        if lmad_injective(l, prover):
            self.record_tier("structural")
            return True
        engine = self.engine_for(ctx)
        from repro.isl.emptiness import Verdict

        if engine.lmad_injective(l) is Verdict.EMPTY:
            self.record_tier("polyhedral")
            return True
        self.record_tier("unknown")
        return False


def lmad_injective(l: Lmad, prover: Optional[Prover] = None) -> bool:
    """Sufficient static condition for an LMAD to denote distinct points.

    Used for update slices: if the write set is injective, an LMAD update
    has no output dependences (paper section III-B).  Checks positive
    strides plus the no-overlapping-dimensions condition.
    """
    p = prover if prover is not None else Prover()
    norm = l.normalize_positive(p)
    if norm is None:
        return False
    norm = norm.drop_unit_dims(p)
    dims = sorted(norm.dims, key=lambda d: stride_sort_key(d.stride))
    span = sym(0)
    for d in dims:
        if not p.pos(d.stride - span):
            return False
        span = span + (d.shape - 1) * d.stride
    return True
