"""Aggregation of LMAD access summaries across loops (paper section II-B).

Given the access set ``W_i`` of one iteration of a loop ``i = 0 .. m-1``,
the union ``W = union_i W_i`` is computed by *promoting* the loop index to a
new LMAD dimension:

* the new dimension's cardinality is the trip count ``m``;
* its stride is ``W_{i+1}.offset - W_i.offset``, which must be independent
  of ``i`` (quasi-affine offsets only);
* the base offset is ``W_i.offset`` at ``i = 0``.

If the loop index occurs in a *cardinality*, the paper (footnote 8) permits
a sound overestimate by substituting whichever loop bound maximizes it; an
occurrence in a *stride* makes aggregation fail (conservative).

These are exactly the "repeated unions of LMADs" that the short-circuiting
summaries ``U_xss`` / ``W_bs`` need (paper section V-B) -- no subtraction or
intersection operators are required.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.lmad.lmad import Lmad, LmadDim
from repro.symbolic import Prover, SymExpr, sym
from repro.symbolic.expr import ExprLike


def aggregate_over_loop(
    access: Lmad,
    var: str,
    count: ExprLike,
    prover: Prover,
) -> Optional[Lmad]:
    """Union of ``access`` over ``var = 0 .. count-1`` as a single LMAD.

    Returns ``None`` when the access is not quasi-affine in ``var`` (the
    caller then falls back to an unknown/top summary).  The result may be an
    overestimate (a superset), which is sound for the non-overlap test.
    """
    count = sym(count)

    # Promote the offset's dependence on `var` to a new dimension.
    shifted = access.substitute({var: SymExpr.var(var) + 1})
    stride_new = shifted.offset - access.offset
    if var in stride_new.free_vars():
        return None  # offset not affine in the loop index

    dims: List[LmadDim] = []
    for d in access.dims:
        shape, stride = d.shape, d.stride
        if var in stride.free_vars():
            return None
        if var in shape.free_vars():
            # Footnote 8: overestimate the cardinality with whichever bound
            # maximizes it.  Try the upper bound first, then the lower.
            hi = shape.substitute({var: count - 1})
            lo = shape.substitute({var: sym(0)})
            if prover.nonneg(hi - lo):
                shape = hi
            elif prover.nonneg(lo - hi):
                shape = lo
            else:
                return None
        dims.append(LmadDim(shape, stride))

    offset0 = access.offset.substitute({var: sym(0)})
    if stride_new.is_zero():
        # The access does not move with the loop: the union is one iteration
        # (with over-approximated cardinalities).
        return Lmad(offset0, tuple(dims))
    return Lmad(offset0, (LmadDim(count, stride_new),) + tuple(dims))


def union_lmads(
    accesses: Sequence[Lmad], prover: Prover
) -> Optional[List[Lmad]]:
    """Union of several LMADs, merging syntactically-equal duplicates.

    The summaries of section V-B are *lists* of LMADs (a union is kept in
    disjunctive form; the non-overlap test is applied pairwise), so this
    only deduplicates -- it never loses precision.
    """
    out: List[Lmad] = []
    for a in accesses:
        if not any(_same_lmad(a, b, prover) for b in out):
            out.append(a)
    return out


def _same_lmad(a: Lmad, b: Lmad, prover: Prover) -> bool:
    if a.rank != b.rank:
        return False
    if not prover.eq(a.offset, b.offset):
        return False
    return all(
        prover.eq(da.shape, db.shape) and prover.eq(da.stride, db.stride)
        for da, db in zip(a.dims, b.dims)
    )
