"""Sum-of-strided-intervals: the representation behind the non-overlap test.

The Non-Overlap theorem (paper section V-C) speaks about *sums of strided
intervals* ``I = sum_j [l_j .. u_j] * s_j`` -- the set of values obtained by
picking one multiplier ``k_j`` in each ``[l_j, u_j]`` and summing
``k_j * s_j``.  An LMAD dimension ``(n : s)`` is the strided interval
``[0 .. n-1] * s``; the LMAD offset is distributed into the interval bounds
(paper footnote 27) so that two LMADs under comparison share a common base.

This module provides the data types and the conversion/distribution
machinery; the recursive splitting procedure itself (paper fig. 8) lives in
:mod:`repro.lmad.overlap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.lmad.lmad import Lmad
from repro.symbolic import Prover, SymExpr, sym
from repro.symbolic.expr import ExprLike, Monomial, _mono_degree


@dataclass(frozen=True)
class StridedInterval:
    """``[lo .. hi] * stride``: the set {k*stride | lo <= k <= hi}."""

    lo: SymExpr
    hi: SymExpr
    stride: SymExpr

    def __post_init__(self):
        object.__setattr__(self, "lo", sym(self.lo))
        object.__setattr__(self, "hi", sym(self.hi))
        object.__setattr__(self, "stride", sym(self.stride))

    def shifted(self, amount: ExprLike) -> "StridedInterval":
        """Translate both bounds by ``amount`` (in multiplier units)."""
        a = sym(amount)
        return StridedInterval(self.lo + a, self.hi + a, self.stride)

    def span(self) -> SymExpr:
        """Largest value in the set, assuming stride > 0 and hi >= lo >= 0."""
        return self.hi * self.stride

    def __str__(self) -> str:
        return f"[{self.lo}..{self.hi}]*({self.stride})"


@dataclass(frozen=True)
class SumOfIntervals:
    """A sum of strided intervals, sorted by ascending stride complexity."""

    intervals: Tuple[StridedInterval, ...]

    def strides(self) -> Tuple[SymExpr, ...]:
        return tuple(iv.stride for iv in self.intervals)

    def with_interval(self, k: int, iv: StridedInterval) -> "SumOfIntervals":
        ivs = list(self.intervals)
        ivs[k] = iv
        return SumOfIntervals(tuple(ivs))

    def __str__(self) -> str:
        return " + ".join(str(iv) for iv in self.intervals)


# ----------------------------------------------------------------------
# Stride ordering
# ----------------------------------------------------------------------
def stride_sort_key(stride: SymExpr) -> tuple:
    """Heuristic "complexity" order for strides: constants first, then by
    degree, then magnitude of leading coefficient, then syntactic.

    The order only has to be *consistent*; if it mis-sorts (e.g. symbolic
    strides whose numeric order differs from their degree order), the
    dimension-overlap checks in the theorem simply fail and the analysis
    stays conservative.
    """
    const = stride.as_int()
    if const is not None:
        return (0, abs(const), "", str(stride))
    return (1, stride.degree(), max(abs(c) for c in stride.terms.values()), str(stride))


def _leading_term(e: SymExpr) -> Tuple[Monomial, int]:
    """Graded-lex leading (monomial, coefficient) of a non-zero polynomial."""
    var_order = sorted(e.free_vars())

    def key(item):
        m, _ = item
        powers = dict(m)
        return (_mono_degree(m), tuple(powers.get(v, 0) for v in var_order))

    return max(e.terms.items(), key=key)


# ----------------------------------------------------------------------
# Offset distribution (paper footnote 27)
# ----------------------------------------------------------------------
def distribute_offset(
    delta: SymExpr,
    strides: Sequence[SymExpr],
    prover: Prover,
    max_steps: int = 32,
) -> Optional[Tuple[Dict[int, SymExpr], Dict[int, SymExpr]]]:
    """Express ``delta`` as non-negative multiples of the given strides.

    Returns ``(shifts_pos, shifts_neg)`` mapping stride index to a provably
    non-negative multiplier such that
    ``delta == sum shifts_pos[k]*strides[k] - sum shifts_neg[k]*strides[k]``.
    Positive shifts translate the first sum-of-intervals' bounds; negative
    ones the second's -- keeping all interval bounds non-negative as the
    theorem requires.  Returns ``None`` on failure (conservative).

    The strategy follows paper footnote 27: repeatedly take the most complex
    remaining term and match it against the stride whose *leading term*
    divides it, preferring more complex strides so that e.g. the ``n*b``
    term of an NW offset lands on the ``n*b - b`` stride rather than on
    ``n``.
    """
    shifts_pos: Dict[int, SymExpr] = {}
    shifts_neg: Dict[int, SymExpr] = {}
    # Candidate strides from most to least complex; skip provably-zero ones.
    order = sorted(
        range(len(strides)), key=lambda k: stride_sort_key(strides[k]), reverse=True
    )

    d = delta
    for _ in range(max_steps):
        if d.is_zero():
            return shifts_pos, shifts_neg
        # Most complex term of the remaining offset.
        term_m, term_c = _leading_term(d)
        matched = False
        for k in order:
            s = strides[k]
            if s.is_zero():
                continue
            lead_m, lead_c = _leading_term(s)
            q_m = SymExpr({term_m: term_c}).div_exact(SymExpr({lead_m: lead_c}))
            if q_m is None:
                continue
            # The quotient must have a provable sign so we know which side
            # of the comparison absorbs it.
            if prover.nonneg(q_m):
                shifts_pos[k] = shifts_pos.get(k, sym(0)) + q_m
                d = d - q_m * s
                matched = True
                break
            if prover.nonneg(-q_m):
                shifts_neg[k] = shifts_neg.get(k, sym(0)) + (-q_m)
                d = d - q_m * s
                matched = True
                break
        if not matched:
            return None
    return None


def synthesize_strides(
    delta: SymExpr,
    strides: List[SymExpr],
    prover: Prover,
) -> List[SymExpr]:
    """Invent stride dimensions for offset terms no existing stride matches.

    Two rank-0 accesses like ``{i*(n+1)}`` vs ``{j}`` have no dimensions at
    all, yet their difference ``i*n + i - j`` carries structure: the term
    ``i*n`` is ``i`` steps of an (implicit) stride ``n``.  For each
    unmatched term ``c*v*m`` where ``v`` has a known upper bound (an index
    variable), we add the stride ``|c|*m`` (and its trivial ``[0..0]``
    interval on both sides) so the distribution step can place ``v`` as the
    interval shift.  This realizes the "distributes the terms of the
    offset" extension the paper claims over Hoeflinger et al. [9].
    """
    out: List[SymExpr] = []

    def matched(term_m, term_c, pool) -> bool:
        # A term is well matched when some stride absorbs most of it: the
        # quotient must be a simple shift (degree <= 1), otherwise a
        # product like i*n would land wholesale on the stride-1 dimension
        # and its structure would be lost.
        for s in pool:
            if s.is_zero():
                continue
            lead_m, lead_c = _leading_term(s)
            q = SymExpr({term_m: term_c}).div_exact(SymExpr({lead_m: lead_c}))
            if q is not None and q.degree() <= 1:
                return True
        return False

    for mono, coeff in delta.terms.items():
        if matched(mono, coeff, strides) or matched(mono, coeff, out):
            continue
        # Prefer splitting off a bounded ("index-like") variable.
        for var, power in mono:
            if power != 1:
                continue
            bound = prover.ctx.bound(var)
            if bound.upper is None:
                continue
            rest = dict(mono)
            del rest[var]
            candidate = SymExpr({tuple(sorted(rest.items())): abs(coeff)})
            if candidate.as_int() == 1:
                continue  # the base stride-1 dim already handles it
            out.append(candidate)
            break
    return out


def pair_to_sums_of_intervals(
    l1: Lmad, l2: Lmad, prover: Prover
) -> Optional[Tuple[SumOfIntervals, SumOfIntervals]]:
    """Convert an LMAD pair to sums of intervals with matching strides.

    Steps (paper section V-C):
    1. normalize both LMADs to non-negative strides (abstract-set reading);
    2. drop unit dimensions and take the union of the two stride sets,
       padding each side with ``[0..0]`` intervals for missing strides
       ("dimensions of length 0 can be introduced or removed at will");
       a stride-1 dimension is always present to absorb constant offsets;
    3. distribute the offset difference ``t1 - t2`` into the interval
       bounds, keeping every bound non-negative.

    Returns ``None`` when any step fails (unknown stride signs, offset not
    expressible), which the caller treats as "possibly overlapping".
    """
    a = l1.normalize_positive(prover)
    b = l2.normalize_positive(prover)
    if a is None or b is None:
        return None
    a = a.drop_unit_dims(prover)
    b = b.drop_unit_dims(prover)

    # Collect the union of strides; force a stride-1 slot.
    stride_keys: List[SymExpr] = []

    def add_stride(s: SymExpr):
        for existing in stride_keys:
            if prover.eq(existing, s):
                return
        stride_keys.append(s)

    add_stride(sym(1))
    for d in a.dims:
        add_stride(d.stride)
    for d in b.dims:
        add_stride(d.stride)
    for s in synthesize_strides(a.offset - b.offset, stride_keys, prover):
        add_stride(s)
    stride_keys.sort(key=stride_sort_key)

    def build(lm: Lmad) -> Optional[List[StridedInterval]]:
        ivs = [StridedInterval(sym(0), sym(0), s) for s in stride_keys]
        for d in lm.dims:
            slot = None
            for k, s in enumerate(stride_keys):
                if prover.eq(s, d.stride):
                    slot = k
                    break
            assert slot is not None
            existing = ivs[slot]
            if not (existing.lo.is_zero() and existing.hi.is_zero()):
                # Two dims with equal strides on one side: merge by adding
                # extents ([0..u1] + [0..u2] at the same stride is
                # [0..u1+u2] -- sound as a superset).
                ivs[slot] = StridedInterval(
                    sym(0), existing.hi + d.shape - 1, d.stride
                )
            else:
                ivs[slot] = StridedInterval(sym(0), d.shape - 1, d.stride)
        return ivs

    ivs1 = build(a)
    ivs2 = build(b)
    if ivs1 is None or ivs2 is None:
        return None

    delta = a.offset - b.offset
    dist = distribute_offset(delta, stride_keys, prover)
    if dist is None:
        return None
    shifts_pos, shifts_neg = dist
    for k, amount in shifts_pos.items():
        ivs1[k] = ivs1[k].shifted(amount)
    for k, amount in shifts_neg.items():
        ivs2[k] = ivs2[k].shifted(amount)

    return SumOfIntervals(tuple(ivs1)), SumOfIntervals(tuple(ivs2))
