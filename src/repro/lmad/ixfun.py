"""Index functions: mapping array indices to flat memory offsets.

An :class:`IndexFn` associates an array with its memory layout (paper
section IV).  Most arrays are described by a *single* LMAD, and every
change-of-layout operation (transposition, triplet slicing, LMAD slicing,
reversal, many reshapes) is O(1): it produces a new single-LMAD index
function without touching memory.

Arbitrary reshapes are the exception (paper fig. 3): flattening a
non-compact layout cannot be expressed as one LMAD, so an index function is
in general a *composition* of LMADs.  Application then works right-to-left:

    apply the innermost LMAD to the index tuple, producing a row-major
    "rank" in the index space of the next LMAD; unrank it to a point;
    apply that LMAD; repeat.

Unranking requires concrete integers (divisions), so composed index
functions only support concrete application -- which is exactly the paper's
observation that "unranking involves costly division and remainder
operations at run-time, but fortunately this case rarely occurs".

Storage convention: ``lmads[0]`` is the memory-side (outermost) LMAD and
``lmads[-1]`` is the index-side (innermost) one; the array's visible shape
is ``lmads[-1].shape``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.lmad.lmad import Lmad, Triplet
from repro.symbolic import Prover, SymExpr, sym
from repro.symbolic.expr import ExprLike


@dataclass(frozen=True)
class IndexFn:
    """A composition of LMADs acting as an array's index function."""

    lmads: Tuple[Lmad, ...]

    def __post_init__(self):
        if not self.lmads:
            raise ValueError("an index function needs at least one LMAD")
        object.__setattr__(self, "lmads", tuple(self.lmads))

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def row_major(shape: Sequence[ExprLike], offset: ExprLike = 0) -> "IndexFn":
        """R(d1..dq): the default layout given to fresh arrays."""
        return IndexFn((Lmad.row_major(shape, offset),))

    @staticmethod
    def col_major(shape: Sequence[ExprLike], offset: ExprLike = 0) -> "IndexFn":
        return IndexFn((Lmad.col_major(shape, offset),))

    @staticmethod
    def from_lmad(single: Lmad) -> "IndexFn":
        return IndexFn((single,))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def inner(self) -> Lmad:
        """The index-side LMAD (defines the visible shape)."""
        return self.lmads[-1]

    @property
    def rank(self) -> int:
        return self.inner.rank

    @property
    def shape(self) -> Tuple[SymExpr, ...]:
        return self.inner.shape

    def is_single(self) -> bool:
        return len(self.lmads) == 1

    def as_single(self) -> Optional[Lmad]:
        return self.lmads[0] if self.is_single() else None

    def free_vars(self) -> frozenset:
        out: frozenset = frozenset()
        for l in self.lmads:
            out |= l.free_vars()
        return out

    def size(self) -> SymExpr:
        return self.inner.size()

    # ------------------------------------------------------------------
    # Instance memoization
    #
    # Index functions are immutable, and the executor's hot paths apply
    # the same handful of derivations to the same instance over and over
    # (``fix_dim(0, i)`` once per thread per launch, ``substitute`` once
    # per loop iteration, ``lmad_slice`` per gather).  The dataclass is
    # frozen but not slotted, so per-instance caches can live in
    # ``__dict__`` without affecting the generated field-based
    # ``__eq__``/``__hash__``.  Entries are themselves immutable, so
    # sharing the returned instances is safe.
    # ------------------------------------------------------------------
    def _memo(self, name: str) -> dict:
        cache = self.__dict__.get(name)
        if cache is None:
            cache = {}
            object.__setattr__(self, name, cache)
        return cache

    def substitute(self, mapping: Mapping[str, ExprLike]) -> "IndexFn":
        key = tuple(
            (k, sym(v))
            for k, v in sorted(mapping.items(), key=lambda kv: kv[0])
        )
        cache = self._memo("_subst_cache")
        hit = cache.get(key)
        if hit is None:
            hit = IndexFn(tuple(l.substitute(mapping) for l in self.lmads))
            cache[key] = hit
        return hit

    def is_direct(self, prover: Prover) -> bool:
        """Row-major with zero offset?  (The layout ``copy`` would produce.)"""
        single = self.as_single()
        if single is None:
            return False
        expected = Lmad.row_major(single.shape)
        if not prover.eq(single.offset, sym(0)):
            return False
        return all(
            prover.eq(d.stride, e.stride)
            for d, e in zip(single.dims, expected.dims)
        )

    # ------------------------------------------------------------------
    # Application
    # ------------------------------------------------------------------
    def apply_symbolic(self, indices: Sequence[ExprLike]) -> SymExpr:
        """Flat offset for symbolic indices; single-LMAD functions only."""
        single = self.as_single()
        if single is None:
            raise ValueError(
                "composed index functions need concrete indices (unranking)"
            )
        return single.apply(indices)

    def apply_concrete(
        self, indices: Sequence[int], env: Mapping[str, int]
    ) -> int:
        """Flat offset for concrete indices (handles compositions).

        This is the executable semantics of paper fig. 3: apply the
        innermost LMAD, then repeatedly unrank through the remaining ones.
        """
        offset = self.lmads[-1].evaluate(env).apply([sym(i) for i in indices])
        val = offset.as_int()
        if val is None:
            raise ValueError(f"indices not concrete under {env}")
        for l in reversed(self.lmads[:-1]):
            inst = l.evaluate(env)
            shape = inst.concrete_shape(env)
            point = np.unravel_index(val, shape)
            val = inst.apply([sym(int(p)) for p in point]).as_int()
            assert val is not None
        return val

    def gather_offsets(self, env: Mapping[str, int]) -> np.ndarray:
        """All flat offsets as an ndarray of the array's concrete shape.

        Used by the memory-IR executor to read/write arrays with arbitrary
        layouts from flat buffers, and by tests as ground truth for the
        abstract-set machinery.
        """
        inst = self.lmads[-1].evaluate(env)
        shape = inst.concrete_shape(env)
        offs = np.full(shape, int(inst.offset.as_int()), dtype=np.int64)
        for axis, d in enumerate(inst.dims):
            n = d.shape.as_int()
            s = d.stride.as_int()
            idx_shape = [1] * len(shape)
            idx_shape[axis] = n
            offs = offs + (np.arange(n, dtype=np.int64) * s).reshape(idx_shape)
        for l in reversed(self.lmads[:-1]):
            outer = l.evaluate(env)
            oshape = outer.concrete_shape(env)
            points = np.unravel_index(offs, oshape)
            acc = np.full(offs.shape, int(outer.offset.as_int()), dtype=np.int64)
            for coord, d in zip(points, outer.dims):
                acc = acc + coord.astype(np.int64) * int(d.stride.as_int())
            offs = acc
        return offs

    # ------------------------------------------------------------------
    # Change-of-layout transformations (paper section IV-B) -- all O(1)
    # ------------------------------------------------------------------
    def _replace_inner(self, new_inner: Lmad) -> "IndexFn":
        return IndexFn(self.lmads[:-1] + (new_inner,))

    def permute(self, perm: Sequence[int]) -> "IndexFn":
        return self._replace_inner(self.inner.permute(perm))

    def transpose(self) -> "IndexFn":
        return self._replace_inner(self.inner.transpose())

    def slice_triplets(self, triplets: Sequence[Triplet]) -> "IndexFn":
        return self._replace_inner(self.inner.slice_triplets(triplets))

    def fix_dim(self, k: int, index: ExprLike) -> "IndexFn":
        key = (k, sym(index))
        cache = self._memo("_fix_cache")
        hit = cache.get(key)
        if hit is None:
            hit = self._replace_inner(self.inner.fix_dim(k, index))
            cache[key] = hit
        return hit

    def reverse(self, k: int) -> "IndexFn":
        return self._replace_inner(self.inner.reverse(k))

    def lmad_slice(self, slice_lmad: Lmad) -> "IndexFn":
        """Generalized LMAD slicing of a rank-1 array (paper section III-B)."""
        cache = self._memo("_slice_cache")
        hit = cache.get(slice_lmad)
        if hit is None:
            hit = self._replace_inner(self.inner.compose_slice(slice_lmad))
            cache[slice_lmad] = hit
        return hit

    def reshape(
        self, new_shape: Sequence[ExprLike], prover: Prover
    ) -> "IndexFn":
        """Reshape, composing a fresh LMAD when a single one cannot express it.

        The caller (type checker) guarantees the element counts agree; this
        method never fails, it just may produce a composed index function
        whose application requires run-time unranking (paper fig. 3).
        """
        direct = self.inner.reshape(new_shape, prover)
        if direct is not None:
            return self._replace_inner(direct)
        return IndexFn(self.lmads + (Lmad.row_major(new_shape),))

    def flatten(self, prover: Prover) -> "IndexFn":
        return self.reshape([self.size()], prover)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        if self.is_single():
            return str(self.lmads[0])
        return " o ".join(str(l) for l in self.lmads)
