"""Linear Memory Access Descriptors and the analyses built on them.

An LMAD (Paek, Hoeflinger, Padua) ``t + {(n1:s1), ..., (nq:sq)}`` denotes the
set of flat indices ``{ t + i1*s1 + ... + iq*sq | 0 <= ik < nk }``.  The paper
(SC22) uses LMADs in three roles, and so does this package:

1. **Generalized slices** at the language level (:class:`~repro.lmad.lmad.Lmad`
   values used as slice descriptors, e.g. all NW anti-diagonal blocks).
2. **Index functions** mapping array indices to flat offsets in a memory
   block (:class:`~repro.lmad.ixfun.IndexFn`, possibly a composition of
   several LMADs with run-time unranking, paper fig. 3).
3. **Abstract access sets** for the short-circuiting index analysis:
   aggregation across loops (:mod:`~repro.lmad.aggregate`, paper section
   II-B) and the static non-overlap test (:mod:`~repro.lmad.overlap`, paper
   fig. 8 and the Non-Overlap theorem of section V-C).

Anti-unification of index functions (paper section IV-C, used when the two
branches of an ``if`` return arrays with different layouts) lives in
:mod:`~repro.lmad.antiunify`.
"""

from repro.lmad.lmad import Lmad, LmadDim, dim, lmad
from repro.lmad.ixfun import IndexFn
from repro.lmad.interval import StridedInterval, SumOfIntervals
from repro.lmad.overlap import NonOverlapChecker, ProverPool, lmads_nonoverlapping
from repro.lmad.aggregate import aggregate_over_loop, union_lmads
from repro.lmad.antiunify import antiunify_ixfns, AntiUnifyResult

__all__ = [
    "Lmad",
    "LmadDim",
    "dim",
    "lmad",
    "IndexFn",
    "StridedInterval",
    "SumOfIntervals",
    "NonOverlapChecker",
    "ProverPool",
    "lmads_nonoverlapping",
    "aggregate_over_loop",
    "union_lmads",
    "antiunify_ixfns",
    "AntiUnifyResult",
]
