"""Anti-unification (least general generalization) of index functions.

When the two branches of an ``if`` return arrays living in different memory
blocks with different layouts (paper section IV-C), the compiler computes
the *least general generalization* of the two index functions: components
that agree are kept, components that differ are replaced by fresh
existential variables, and the branches return the concrete values of those
variables alongside the array.

Example (the paper's): lgg of row-major ``0 + {(n:m)(m:1)}`` and
column-major ``0 + {(n:1)(m:n)}`` is ``0 + {(n:a)(m:b)}`` with the then
branch binding ``(a,b) = (m,1)`` and the else branch ``(a,b) = (1,n)``.

Anti-unification fails (returns ``None``) when the index functions have
different numbers of constituent LMADs or different ranks; the memory
introduction pass then inserts copies to normalize the branches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lmad.ixfun import IndexFn
from repro.lmad.lmad import Lmad, LmadDim
from repro.symbolic import SymExpr


@dataclass(frozen=True)
class AntiUnifyResult:
    """The generalized index function plus per-branch bindings.

    ``bindings`` maps each fresh existential variable to the pair of
    expressions it stands for in the (then, else) branches.
    """

    ixfn: IndexFn
    bindings: Tuple[Tuple[str, SymExpr, SymExpr], ...]


class _Generalizer:
    def __init__(self, prefix: str):
        self.prefix = prefix
        self.memo: Dict[Tuple[SymExpr, SymExpr], SymExpr] = {}
        self.bindings: List[Tuple[str, SymExpr, SymExpr]] = []

    def expr(self, a: SymExpr, b: SymExpr) -> SymExpr:
        if a == b:
            return a
        key = (a, b)
        if key in self.memo:
            return self.memo[key]
        name = f"{self.prefix}{len(self.bindings)}"
        var = SymExpr.var(name)
        self.memo[key] = var
        self.bindings.append((name, a, b))
        return var


def antiunify_ixfns(
    f1: IndexFn, f2: IndexFn, prefix: str = "ext_"
) -> Optional[AntiUnifyResult]:
    """Least general generalization of two index functions.

    The same pair of differing sub-expressions is generalized to the *same*
    variable everywhere (this is what makes the result least general).
    Returns ``None`` on structural mismatch.
    """
    if len(f1.lmads) != len(f2.lmads):
        return None
    gen = _Generalizer(prefix)
    lmads: List[Lmad] = []
    for l1, l2 in zip(f1.lmads, f2.lmads):
        if l1.rank != l2.rank:
            return None
        offset = gen.expr(l1.offset, l2.offset)
        dims = tuple(
            LmadDim(gen.expr(d1.shape, d2.shape), gen.expr(d1.stride, d2.stride))
            for d1, d2 in zip(l1.dims, l2.dims)
        )
        lmads.append(Lmad(offset, dims))
    return AntiUnifyResult(IndexFn(tuple(lmads)), tuple(gen.bindings))
