"""Simulated-GPU substrate: device models and the roofline cost model.

The paper evaluates on an NVIDIA A100 and an AMD MI100; we have neither,
so (per the reproduction's substitution rule) the executor counts memory
traffic, flops and kernel launches exactly, and this package converts those
counts into simulated wall-clock time with a roofline model:

    t(kernel) = max(bytes / effective_bandwidth,
                    flops / effective_flops) + launch_overhead

Short-circuiting is a memory-traffic optimization, so its *impact* (the
opt/unopt ratio -- the paper's headline column) depends only on measured
traffic, which we count exactly; the absolute milliseconds and the
ref-relative columns inherit the model's approximations (no cache model,
no occupancy effects), which EXPERIMENTS.md documents.
"""

from repro.gpu.device import A100, MI100, Device
from repro.gpu.costmodel import CostModel, simulate_time

__all__ = ["A100", "MI100", "Device", "CostModel", "simulate_time"]
