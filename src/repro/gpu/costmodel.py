"""Roofline cost model: executor statistics to simulated seconds.

Per kernel:

    t = max(bytes / bandwidth, flops / effective_flops)
        + launches * launch_overhead

Copies (``copy``/``update``/``concat`` kernels) stream contiguously and use
the stream bandwidth; ``map``/``reduce`` kernels use a blend between stream
and strided bandwidth (GPU coalescing is decided by the innermost stride,
which the executor does not track per access; the blend parameter is a
documented approximation, not a per-benchmark tuning knob).

A ``sequential`` flag models Rodinia NN's sequential reference reduction
(one element per "round trip"), used only by reference models.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.device import Device
from repro.mem.stats import ExecStats, KernelStat

#: Fraction of map-kernel traffic assumed coalesced.
DEFAULT_COALESCED_FRACTION = 0.7


@dataclass
class CostModel:
    """Converts :class:`~repro.mem.stats.ExecStats` into simulated time."""

    device: Device
    coalesced_fraction: float = DEFAULT_COALESCED_FRACTION

    def kernel_time(self, k: KernelStat) -> float:
        if k.kind in ("copy", "update", "concat", "fill"):
            bw = self.device.stream_bandwidth
        else:
            f = self.coalesced_fraction
            bw = (
                f * self.device.stream_bandwidth
                + (1.0 - f) * self.device.strided_bandwidth
            )
        # Memory spaces are parallel channels: DRAM and on-chip traffic
        # overlap, so the memory time is the *max* over per-space times,
        # not their sum.  All-HBM kernels reduce to the old bytes/bw.
        hbm_bytes = k.read_in("hbm") + k.written_in("hbm")
        mem_t = hbm_bytes / bw
        for sp in set(k.space_read) | set(k.space_written):
            sp_bytes = k.space_read.get(sp, 0) + k.space_written.get(sp, 0)
            if sp_bytes:
                mem_t = max(mem_t, sp_bytes / self.device.space_bandwidth(sp))
        flop_t = k.flops / self.device.effective_flops
        return max(mem_t, flop_t) + k.launches * self.device.launch_overhead

    def total_time(self, stats: ExecStats) -> float:
        return sum(self.kernel_time(k) for k in stats.kernels.values())

    def time_of_traffic(
        self,
        bytes_read: int,
        bytes_written: int,
        flops: int = 0,
        launches: int = 1,
        sequential_elems: int = 0,
    ) -> float:
        """Time for an analytically-modelled (reference) kernel.

        ``sequential_elems`` adds one memory round-trip latency per element
        -- the model of Rodinia NN's sequential reduction (paper table VII's
        "Rodinia is significantly slower, because it uses a sequential
        reduction").
        """
        mem_t = (bytes_read + bytes_written) / self.device.stream_bandwidth
        flop_t = flops / self.device.effective_flops
        seq_t = sequential_elems * 1.2e-8  # ~12ns dependent-op latency
        return max(mem_t, flop_t) + seq_t + launches * self.device.launch_overhead


def simulate_time(stats: ExecStats, device: Device) -> float:
    """Convenience: total simulated seconds of a run on ``device``."""
    return CostModel(device).total_time(stats)
