"""Device models for the two GPUs of the paper's evaluation.

Parameters are taken from the public datasheets; *efficiency* factors
reflect that streaming kernels reach only a fraction of peak (STREAM-like
efficiency ~85% on A100 HBM2e, a bit lower on MI100), and that irregular
(strided/gather) access patterns reach less still.

The relative standing of the two devices matters for table *shape*: the
MI100 has lower achievable bandwidth and higher launch overhead, which is
one reason the paper's MI100 columns show larger short-circuiting impact
for copy-bound benchmarks (e.g. LBM: 1.6x on MI100 vs 1.1x on A100).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Device:
    """A simulated GPU."""

    name: str
    #: Peak DRAM bandwidth, bytes/second.
    peak_bandwidth: float
    #: Achievable fraction of peak for contiguous streaming access.
    stream_efficiency: float
    #: Achievable fraction of peak for strided/gathered access.
    strided_efficiency: float
    #: Peak f32 throughput, flop/s.
    peak_flops: float
    #: Fraction of peak flops typical scalar-heavy kernels achieve.
    flop_efficiency: float
    #: Host-side kernel launch overhead, seconds.
    launch_overhead: float
    #: On-chip scratch (shared-memory) aggregate bandwidth, as a multiple
    #: of peak DRAM bandwidth.  Datasheet-order figures: ~19 TB/s shared
    #: memory on A100 vs 1.55 TB/s HBM2e.
    scratch_bandwidth_x: float = 12.0
    #: Register-file aggregate bandwidth multiple (an order of magnitude
    #: past shared memory; only ever a tie-breaker in the model).
    regs_bandwidth_x: float = 48.0

    @property
    def stream_bandwidth(self) -> float:
        return self.peak_bandwidth * self.stream_efficiency

    def space_bandwidth(self, space: str) -> float:
        """Achievable bandwidth of one memory-space channel.

        ``hbm`` uses the streaming figure; on-chip spaces are modelled as
        fixed multiples of peak DRAM bandwidth (unknown spaces fall back
        to the DRAM figure, a conservative choice).
        """
        if space == "scratch":
            return self.peak_bandwidth * self.scratch_bandwidth_x
        if space == "regs":
            return self.peak_bandwidth * self.regs_bandwidth_x
        return self.stream_bandwidth

    @property
    def strided_bandwidth(self) -> float:
        return self.peak_bandwidth * self.strided_efficiency

    @property
    def effective_flops(self) -> float:
        return self.peak_flops * self.flop_efficiency


#: NVIDIA A100 (40 GB, HBM2e): 1555 GB/s, 19.5 TFLOP/s f32, ~4 us launches.
A100 = Device(
    name="A100",
    peak_bandwidth=1555e9,
    stream_efficiency=0.85,
    strided_efficiency=0.55,
    peak_flops=19.5e12,
    flop_efficiency=0.25,
    launch_overhead=4e-6,
    scratch_bandwidth_x=12.0,
    regs_bandwidth_x=48.0,
)

#: AMD MI100: 1228 GB/s HBM2, 23.1 TFLOP/s f32, ~8 us launches (HIP).
MI100 = Device(
    name="MI100",
    peak_bandwidth=1228e9,
    stream_efficiency=0.75,
    strided_efficiency=0.40,
    peak_flops=23.1e12,
    flop_efficiency=0.25,
    launch_overhead=8e-6,
    scratch_bandwidth_x=9.0,
    regs_bandwidth_x=40.0,
)
