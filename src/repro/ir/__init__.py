"""The core intermediate representation of the array language.

This package implements the "informally specified functional language,
equivalent to a subset of Futhark's core IR" of paper section II-C:

* a standard functional language in administrative normal form -- every
  statement binds a *pattern* of variables to one expression whose operands
  are variables or literals;
* parallelism expressed with :class:`~repro.ir.ast.Map` (the paper's
  ``mapnest``) and :class:`~repro.ir.ast.Reduce`;
* sequential ``loop`` and ``if`` compound statements that carry values
  (including arrays) across control flow;
* fresh-array constructors ``iota``, ``scratch``, ``copy``, ``concat`` and
  O(1) change-of-layout operations ``transpose``/``rearrange``, triplet and
  LMAD slicing, ``reshape``, ``reverse``;
* in-place updates ``A with [W] = X`` whose safety rests on the uniqueness
  discipline checked by :mod:`~repro.ir.typecheck`.

The same AST is reused by the memory pipeline: memory annotations
(:class:`~repro.mem.memir.MemBinding`) are attached to pattern elements as
an *add-on*, so that "if the memory annotations are deleted, the program
remains semantically unchanged" (paper section I).
"""

from repro.ir.types import ArrayType, ScalarType, Type, f32, f64, i64, boolean
from repro.ir.ast import (
    Alloc,
    ArgMin,
    BinOp,
    Block,
    Concat,
    Copy,
    Fun,
    If,
    Index,
    Iota,
    Lambda,
    Let,
    Lit,
    LmadSlice,
    Loop,
    Map,
    Param,
    PatElem,
    Rearrange,
    Reduce,
    Replicate,
    Reshape,
    Reverse,
    Scratch,
    SliceT,
    UnOp,
    Update,
    VarRef,
)
from repro.ir.builder import FunBuilder
from repro.ir.interp import Interpreter, run_fun
from repro.ir.typecheck import TypeError_, typecheck_fun
from repro.ir.alias import AliasInfo, analyze_aliases
from repro.ir.lastuse import LastUseInfo, analyze_last_uses

__all__ = [
    "ArrayType",
    "ScalarType",
    "Type",
    "f32",
    "f64",
    "i64",
    "boolean",
    "Alloc",
    "ArgMin",
    "BinOp",
    "Block",
    "Concat",
    "Copy",
    "Fun",
    "If",
    "Index",
    "Iota",
    "Lambda",
    "Let",
    "Lit",
    "LmadSlice",
    "Loop",
    "Map",
    "Param",
    "PatElem",
    "Rearrange",
    "Reduce",
    "Replicate",
    "Reshape",
    "Reverse",
    "Scratch",
    "SliceT",
    "UnOp",
    "Update",
    "VarRef",
    "FunBuilder",
    "Interpreter",
    "run_fun",
    "TypeError_",
    "typecheck_fun",
    "AliasInfo",
    "analyze_aliases",
    "LastUseInfo",
    "analyze_last_uses",
]
