"""Reference interpreter: the purely functional semantics of the IR.

This interpreter defines what programs *mean*, independently of memory:
every array constructor returns a fresh NumPy array, updates copy, and no
aliasing is observable.  The memory-IR executor
(:mod:`repro.mem.exec`) must agree with it bit-for-bit -- the test suite
checks optimized programs against this interpreter, which is how we know
short-circuiting is semantics-preserving.

Dynamic safety checks for LMAD slices/updates (paper section III-B: strides
non-zero and no overlapping dimensions, so updates have no output
dependences) are performed here with ``check_lmad_updates=True``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

from repro.lmad.lmad import Lmad
from repro.symbolic import SymExpr

from repro.ir import ast as A
from repro.ir.types import DTYPE_INFO


class InterpError(Exception):
    """Run-time failure of an IR program (bad index, failed dynamic check)."""


def eval_sym(expr: SymExpr, env: Mapping[str, object]) -> int:
    """Evaluate a symbolic integer expression in a value environment."""
    vals: Dict[str, int] = {}
    for v in expr.free_vars():
        if v not in env:
            raise InterpError(f"unbound scalar {v!r} in index expression")
        val = env[v]
        if isinstance(val, np.generic):
            val = val.item()
        if not isinstance(val, int):
            raise InterpError(f"scalar {v!r} is not an integer: {val!r}")
        vals[v] = val
    return expr.evaluate(vals)


def lmad_offsets_np(lmad: Lmad, env: Mapping[str, object]) -> np.ndarray:
    """Flat offsets of an LMAD as an ndarray of the LMAD's shape."""
    offset = eval_sym(lmad.offset, env)
    shape = tuple(eval_sym(d.shape, env) for d in lmad.dims)
    strides = [eval_sym(d.stride, env) for d in lmad.dims]
    offs = np.full(shape, offset, dtype=np.int64)
    for axis, (n, s) in enumerate(zip(shape, strides)):
        idx_shape = [1] * len(shape)
        idx_shape[axis] = n
        offs = offs + (np.arange(n, dtype=np.int64) * s).reshape(idx_shape)
    return offs


class Interpreter:
    """Evaluate a function on concrete inputs."""

    def __init__(self, fun: A.Fun, check_lmad_updates: bool = True):
        self.fun = fun
        self.check_lmad_updates = check_lmad_updates

    # ------------------------------------------------------------------
    def run(self, **inputs) -> List[object]:
        env: Dict[str, object] = {}
        declared = {p.name for p in self.fun.params}
        for p in self.fun.params:
            if p.name not in inputs:
                raise InterpError(f"missing input {p.name!r}")
            env[p.name] = inputs[p.name]
        # Extra keyword arguments bind free size variables (e.g. passing
        # n=4 for a shape written in terms of n without an explicit param).
        for k, v in inputs.items():
            if k not in declared:
                env[k] = v
        # Unify symbolic shape variables with the concrete input shapes.
        from repro.ir.types import ArrayType
        from repro.symbolic import SymExpr

        for p in self.fun.params:
            t = p.type
            if not isinstance(t, ArrayType):
                continue
            arr = env[p.name]
            for dim_expr, extent in zip(t.shape, np.shape(arr)):
                fv = sorted(dim_expr.free_vars())
                if (
                    len(fv) == 1
                    and fv[0] not in env
                    and dim_expr == SymExpr.var(fv[0])
                ):
                    env[fv[0]] = int(extent)
        return self.run_block(self.fun.body, env)

    def run_block(self, block: A.Block, env: Dict[str, object]) -> List[object]:
        for stmt in block.stmts:
            values = self.eval_exp(stmt.exp, env)
            if len(values) != len(stmt.pattern):
                raise InterpError(
                    f"arity mismatch binding {stmt.names}: got {len(values)}"
                )
            for pe, v in zip(stmt.pattern, values):
                env[pe.name] = v
        return [env[r] for r in block.result]

    # ------------------------------------------------------------------
    def _operand(self, op: A.Operand, env: Mapping[str, object]):
        if isinstance(op, str):
            return env[op]
        if isinstance(op, SymExpr):
            return eval_sym(op, env)
        return op

    def eval_exp(self, exp: A.Exp, env: Dict[str, object]) -> List[object]:
        if isinstance(exp, A.VarRef):
            return [env[exp.name]]
        if isinstance(exp, A.Lit):
            return [_np_scalar(exp.value, exp.dtype)]
        if isinstance(exp, A.ScalarE):
            return [eval_sym(exp.expr, env)]
        if isinstance(exp, A.BinOp):
            return [self._binop(exp.op, self._operand(exp.x, env), self._operand(exp.y, env))]
        if isinstance(exp, A.UnOp):
            return [self._unop(exp.op, self._operand(exp.x, env))]
        if isinstance(exp, A.Iota):
            n = eval_sym(exp.n, env)
            return [np.arange(n, dtype=DTYPE_INFO[exp.dtype][0])]
        if isinstance(exp, A.Scratch):
            shape = tuple(eval_sym(s, env) for s in exp.shape)
            # Deterministic "uninitialized" contents for reproducible tests.
            return [np.zeros(shape, dtype=DTYPE_INFO[exp.dtype][0])]
        if isinstance(exp, A.Replicate):
            shape = tuple(eval_sym(s, env) for s in exp.shape)
            value = self._operand(exp.value, env)
            dtype = getattr(value, "dtype", DTYPE_INFO[exp.dtype][0])
            return [np.full(shape, value, dtype=dtype)]
        if isinstance(exp, A.Copy):
            return [np.array(env[exp.src], copy=True, order="C")]
        if isinstance(exp, A.Concat):
            return [np.concatenate([env[s] for s in exp.srcs], axis=0)]
        if isinstance(exp, A.Index):
            arr = env[exp.src]
            idx = tuple(eval_sym(i, env) for i in exp.indices)
            try:
                return [arr[idx]]
            except IndexError as e:
                raise InterpError(f"index {idx} out of bounds for {exp.src}") from e
        if isinstance(exp, A.SliceT):
            return [self._slice_triplet(env[exp.src], exp.triplets, env)]
        if isinstance(exp, A.LmadSlice):
            arr = env[exp.src]
            offs = lmad_offsets_np(exp.lmad, env)
            self._bounds_check(offs, arr.size, exp.src)
            return [arr.reshape(-1)[offs]]
        if isinstance(exp, A.Rearrange):
            return [np.transpose(env[exp.src], exp.perm)]
        if isinstance(exp, A.Reshape):
            shape = tuple(eval_sym(s, env) for s in exp.shape)
            return [env[exp.src].reshape(shape)]
        if isinstance(exp, A.Reverse):
            return [np.flip(env[exp.src], exp.dim)]
        if isinstance(exp, A.Update):
            return [self._update(exp, env)]
        if isinstance(exp, A.Map):
            return self._map(exp, env)
        if isinstance(exp, A.Loop):
            return self._loop(exp, env)
        if isinstance(exp, A.If):
            cond = self._operand(exp.cond, env)
            block = exp.then_block if cond else exp.else_block
            return self.run_block(block, dict(env))
        if isinstance(exp, A.Reduce):
            arr = env[exp.src]
            if exp.op == "+":
                return [arr.sum(dtype=arr.dtype)]
            if exp.op == "min":
                return [arr.min()]
            if exp.op == "max":
                return [arr.max()]
            raise InterpError(f"unknown reduce op {exp.op}")
        if isinstance(exp, A.ArgMin):
            arr = env[exp.src]
            i = int(np.argmin(arr))
            return [arr[i], i]
        if isinstance(exp, A.Alloc):
            raise InterpError(
                "Alloc has no functional semantics; run memory-annotated "
                "programs with repro.mem.exec instead"
            )
        raise InterpError(f"unknown expression {type(exp).__name__}")

    # ------------------------------------------------------------------
    @staticmethod
    def _binop(op: str, x, y):
        if op == "+":
            return x + y
        if op == "-":
            return x - y
        if op == "*":
            return x * y
        if op == "/":
            return x / y
        if op == "//":
            return x // y
        if op == "%":
            return x % y
        if op == "min":
            return min(x, y) if np.isscalar(x) or x.ndim == 0 else np.minimum(x, y)
        if op == "max":
            return max(x, y) if np.isscalar(x) or x.ndim == 0 else np.maximum(x, y)
        if op == "pow":
            return x**y
        if op == "<":
            return bool(x < y)
        if op == "<=":
            return bool(x <= y)
        if op == "==":
            return bool(x == y)
        if op == "!=":
            return bool(x != y)
        if op == ">":
            return bool(x > y)
        if op == ">=":
            return bool(x >= y)
        if op == "&&":
            return bool(x) and bool(y)
        if op == "||":
            return bool(x) or bool(y)
        raise InterpError(f"unknown binop {op!r}")

    @staticmethod
    def _unop(op: str, x):
        if op == "neg":
            return -x
        if op == "sqrt":
            return np.sqrt(x)
        if op == "exp":
            return np.exp(x)
        if op == "log":
            return np.log(x)
        if op == "abs":
            return abs(x)
        if op == "i64":
            return int(x)
        if op == "f32":
            return np.float32(x)
        if op == "f64":
            return np.float64(x)
        raise InterpError(f"unknown unop {op!r}")

    def _slice_triplet(self, arr: np.ndarray, triplets, env) -> np.ndarray:
        index_arrays = []
        for axis, (start, count, step) in enumerate(triplets):
            s = eval_sym(start, env)
            c = eval_sym(count, env)
            st = eval_sym(step, env)
            idx = s + np.arange(c) * st
            if c > 0 and (idx.min() < 0 or idx.max() >= arr.shape[axis]):
                raise InterpError(
                    f"triplet slice out of bounds on axis {axis}: "
                    f"{idx.min()}..{idx.max()} vs extent {arr.shape[axis]}"
                )
            index_arrays.append(idx)
        return arr[np.ix_(*index_arrays)]

    def _bounds_check(self, offs: np.ndarray, size: int, name: str) -> None:
        if offs.size and (offs.min() < 0 or offs.max() >= size):
            raise InterpError(
                f"LMAD slice out of bounds for {name}: "
                f"{offs.min()}..{offs.max()} vs size {size}"
            )

    def _update(self, exp: A.Update, env: Dict[str, object]) -> np.ndarray:
        src = env[exp.src]
        out = np.array(src, copy=True, order="C")
        if isinstance(exp.spec, A.PointSpec):
            idx = tuple(eval_sym(i, env) for i in exp.spec.indices)
            out[idx] = self._operand(exp.value, env)
            return out
        value = self._operand(exp.value, env)
        if isinstance(exp.spec, A.TripletSpec):
            index_arrays = []
            for axis, (start, count, step) in enumerate(exp.spec.triplets):
                s = eval_sym(start, env)
                c = eval_sym(count, env)
                st = eval_sym(step, env)
                index_arrays.append(s + np.arange(c) * st)
            out[np.ix_(*index_arrays)] = value
            return out
        assert isinstance(exp.spec, A.LmadSpec)
        offs = lmad_offsets_np(exp.spec.lmad, env)
        if offs.size == 0:
            return out
        self._bounds_check(offs, out.size, exp.src)
        if self.check_lmad_updates:
            # Paper section III-B dynamic checks: the LMAD's points must be
            # pairwise distinct (no output dependences in the parallel update).
            flat = offs.reshape(-1)
            if np.unique(flat).size != flat.size:
                raise InterpError(
                    f"LMAD update on {exp.src} has overlapping points"
                )
        out.reshape(-1)[offs] = value
        return out

    def _map(self, exp: A.Map, env: Dict[str, object]) -> List[object]:
        width = eval_sym(exp.width, env)
        per_thread: List[List[object]] = []
        for i in range(width):
            child = dict(env)
            child[exp.lam.params[0]] = i
            per_thread.append(self.run_block(exp.lam.body, child))
        n_res = len(exp.lam.body.result)
        outputs = []
        for k in range(n_res):
            rows = [per_thread[i][k] for i in range(width)]
            if rows:
                outputs.append(np.stack([np.asarray(r) for r in rows]))
            else:
                outputs.append(np.zeros((0,), dtype=np.float32))
        return outputs

    def _loop(self, exp: A.Loop, env: Dict[str, object]) -> List[object]:
        state = [env[init] for _, init in exp.carried]
        count = eval_sym(exp.count, env)
        for i in range(count):
            child = dict(env)
            child[exp.index] = i
            for (p, _), v in zip(exp.carried, state):
                child[p.name] = v
            state = self.run_block(exp.body, child)
        return state


def run_fun(fun: A.Fun, check_lmad_updates: bool = True, **inputs) -> List[object]:
    """One-shot convenience: interpret ``fun`` on the given inputs."""
    return Interpreter(fun, check_lmad_updates=check_lmad_updates).run(**inputs)


def _np_scalar(value, dtype: str):
    return np.dtype(DTYPE_INFO[dtype][0]).type(value)
