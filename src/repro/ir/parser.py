"""A textual front end for the core language.

Parses the surface syntax that :mod:`repro.ir.pretty` emits -- so programs
can be written as text, pretty-printed IR can be re-read, and the test
suite can assert the round-trip property ``parse . pretty == id`` (up to
the memory/last-use annotations, which the parser deliberately discards:
they are compiler-introduced add-ons, not part of the language).

Grammar sketch (statement-oriented, ANF):

    fun     ::= 'fun' NAME '(' params ')' '=' block
    block   ::= stmt* 'in' '(' names ')'
    stmt    ::= 'let' '(' pat (',' pat)* ')' '=' exp
    pat     ::= NAME ':' type annotation?
    type    ::= '*'? ('[' poly ']')* dtype
    exp     ::= compound | simple
    compound::= 'map' '(' NAME '<' poly ')' '{' block '}'
              | 'loop' '(' NAME '=' NAME (',' ...)* ')' 'for' NAME '<' poly
                    'do' '{' block '}'
              | 'if' operand 'then' '{' block '}' 'else' '{' block '}'
    simple  ::= 'iota' poly | 'scratch' poly* dtype | 'copy' NAME
              | 'concat' NAME+ | 'replicate' poly* operand
              | 'rearrange' '(' INT,* ')' NAME | 'reshape' '[' poly* ']' NAME
              | 'reverse' '@' INT NAME | 'reduce' '(' op ')' NAME
              | 'argmin' NAME
              | NAME '[' indices | triplets | lmad ']'        (reads)
              | NAME 'with' '[' spec ']' '=' operand          (updates)
              | operand (op operand)?                         (scalars)

Scalar expressions are type-directed: an arithmetic expression whose
operands are all ``i64`` parses to a :class:`repro.ir.ast.ScalarE`
polynomial (semantically identical to the chain of BinOps it came from);
anything involving floats parses to a single BinOp/UnOp as printed.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.lmad.lmad import Lmad, LmadDim
from repro.symbolic import SymExpr, sym

from repro.ir import ast as A
from repro.ir.types import ArrayType, DTYPES, ScalarType, Type


class ParseError(Exception):
    """Syntax error with position information."""


_TOKEN_RE = re.compile(
    r"""
      (?P<float>\d+\.\d*(?:[eE][+-]?\d+)?|\d+[eE][+-]?\d+)
    | (?P<int>\d+)
    | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    | (?P<sym>->|<=|>=|==|!=|&&|\|\||//|[-+*/%^<>=(){}\[\],:@])
    """,
    re.VERBOSE,
)

_COMMENT_RE = re.compile(r"--.*$", re.MULTILINE)

_KEYWORDS = {
    "fun", "let", "in", "map", "loop", "for", "do", "if", "then", "else",
    "with", "iota", "scratch", "replicate", "copy", "concat", "rearrange",
    "reshape", "reverse", "reduce", "argmin", "alloc", "min", "max", "pow",
    "true", "false",
}

_BINOPS = {
    "+", "-", "*", "/", "//", "%", "min", "max", "pow",
    "<", "<=", "==", "!=", ">", ">=", "&&", "||",
}
_UNOPS = {"neg", "sqrt", "exp", "log", "abs", "i64", "f32", "f64"}


class _Lexer:
    def __init__(self, text: str):
        clean = _COMMENT_RE.sub("", text)
        self.tokens: List[Tuple[str, str]] = []
        pos = 0
        while pos < len(clean):
            if clean[pos].isspace():
                pos += 1
                continue
            m = _TOKEN_RE.match(clean, pos)
            if not m:
                raise ParseError(f"bad character {clean[pos]!r} at {pos}")
            kind = m.lastgroup
            assert kind is not None
            self.tokens.append((kind, m.group()))
            pos = m.end()
        self.i = 0

    def peek(self, ahead: int = 0) -> Tuple[str, str]:
        j = self.i + ahead
        return self.tokens[j] if j < len(self.tokens) else ("eof", "")

    def next(self) -> Tuple[str, str]:
        tok = self.peek()
        self.i += 1
        return tok

    def expect(self, value: str) -> str:
        kind, tok = self.next()
        if tok != value:
            raise ParseError(f"expected {value!r}, got {tok!r}")
        return tok

    def accept(self, value: str) -> bool:
        if self.peek()[1] == value:
            self.i += 1
            return True
        return False


class _Parser:
    def __init__(self, text: str):
        self.lx = _Lexer(text)
        self.types: Dict[str, Type] = {}

    # ------------------------------------------------------------------
    def parse_fun(self) -> A.Fun:
        self.lx.expect("fun")
        _, name = self.lx.next()
        self.lx.expect("(")
        params: List[A.Param] = []
        if not self.lx.accept(")"):
            while True:
                _, pname = self.lx.next()
                self.lx.expect(":")
                t = self.parse_type()
                params.append(A.Param(pname, t))
                self.types[pname] = t
                if isinstance(t, ArrayType):
                    for s in t.shape:
                        for v in s.free_vars():
                            self.types.setdefault(v, ScalarType("i64"))
                if self.lx.accept(")"):
                    break
                self.lx.expect(",")
        self.lx.expect("=")
        body = self.parse_block(end=None)
        return A.Fun(name, params, body)

    # ------------------------------------------------------------------
    def parse_type(self) -> Type:
        unique = self.lx.accept("*")
        dims: List[SymExpr] = []
        while self.lx.accept("["):
            dims.append(self.parse_poly(stop={"]"}))
            self.lx.expect("]")
        kind, tok = self.lx.next()
        if tok not in DTYPES:
            raise ParseError(f"unknown dtype {tok!r}")
        if dims:
            return ArrayType(tok, tuple(dims), unique)
        return ScalarType(tok)

    # ------------------------------------------------------------------
    def parse_block(self, end: Optional[str] = "}") -> A.Block:
        stmts: List[A.Let] = []
        while True:
            kind, tok = self.lx.peek()
            if tok == "let":
                stmts.append(self.parse_stmt())
            elif tok == "in":
                self.lx.next()
                self.lx.expect("(")
                names: List[str] = []
                if not self.lx.accept(")"):
                    while True:
                        names.append(self.lx.next()[1])
                        if self.lx.accept(")"):
                            break
                        self.lx.expect(",")
                if end is not None:
                    self.lx.expect(end)
                return A.Block(stmts, tuple(names))
            else:
                raise ParseError(f"expected 'let' or 'in', got {tok!r}")

    def parse_stmt(self) -> A.Let:
        self.lx.expect("let")
        self.lx.expect("(")
        pattern: List[A.PatElem] = []
        while True:
            _, pname = self.lx.next()
            self.lx.expect(":")
            t = self.parse_type()
            self._skip_annotation()
            pattern.append(A.PatElem(pname, t))
            self.types[pname] = t
            if self.lx.accept(")"):
                break
            self.lx.expect(",")
        self.lx.expect("=")
        exp = self.parse_exp()
        return A.Let(pattern, exp)

    def _skip_annotation(self) -> None:
        """Discard a ``@ mem -> ixfn`` memory annotation, if present."""
        if not self.lx.accept("@"):
            return
        depth = 0
        while True:
            kind, tok = self.lx.peek()
            if kind == "eof":
                return
            if depth == 0 and tok in (",", ")"):
                return
            if tok in "([{":
                depth += 1
            elif tok in ")]}":
                depth -= 1
            self.lx.next()

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_exp(self) -> A.Exp:
        kind, tok = self.lx.peek()
        if tok == "map":
            return self.parse_map()
        if tok == "loop":
            return self.parse_loop()
        if tok == "if":
            return self.parse_if()
        if tok == "iota":
            self.lx.next()
            return A.Iota(self.parse_poly(stop={"let", "in"}))
        if tok == "scratch":
            self.lx.next()
            return self._parse_scratch()
        if tok == "replicate":
            self.lx.next()
            return self._parse_replicate()
        if tok == "copy":
            self.lx.next()
            return A.Copy(self.lx.next()[1])
        if tok == "concat":
            self.lx.next()
            srcs = []
            while self.lx.peek()[0] == "name" and self.lx.peek()[1] not in (
                "let",
                "in",
            ):
                srcs.append(self.lx.next()[1])
            return A.Concat(tuple(srcs))
        if tok == "rearrange":
            self.lx.next()
            self.lx.expect("(")
            perm = []
            while True:
                perm.append(int(self.lx.next()[1]))
                if self.lx.accept(")"):
                    break
                self.lx.expect(",")
            return A.Rearrange(self.lx.next()[1], tuple(perm))
        if tok == "reshape":
            self.lx.next()
            dims = self._parse_dim_list()
            return A.Reshape(self.lx.next()[1], tuple(dims))
        if tok == "reverse":
            self.lx.next()
            self.lx.expect("@")
            dim = int(self.lx.next()[1])
            return A.Reverse(self.lx.next()[1], dim)
        if tok == "reduce":
            self.lx.next()
            self.lx.expect("(")
            op = self.lx.next()[1]
            self.lx.expect(")")
            return A.Reduce(op, self.lx.next()[1])
        if tok == "argmin":
            self.lx.next()
            return A.ArgMin(self.lx.next()[1])
        if tok == "alloc":
            self.lx.next()
            self.lx.expect("(")
            size = self.parse_poly(stop={"x"})
            self.lx.expect("x")
            dtype = self.lx.next()[1]
            space = "hbm"
            if self.lx.peek()[1] == "@":
                self.lx.next()
                space = self.lx.next()[1]
            self.lx.expect(")")
            return A.Alloc(size, dtype, space)
        if kind == "name" and tok in _UNOPS and self.lx.peek(1)[1] != "with":
            # Unary op applied to one operand.
            self.lx.next()
            return A.UnOp(tok, self._parse_operand())
        return self.parse_scalar_or_access()

    def _parse_dim_list(self) -> List[SymExpr]:
        self.lx.expect("[")
        dims: List[SymExpr] = []
        if self.lx.accept("]"):
            return dims
        while True:
            dims.append(self.parse_poly(stop={",", "]"}))
            if self.lx.accept("]"):
                return dims
            self.lx.expect(",")

    def _parse_scratch(self) -> A.Exp:
        dims = self._parse_dim_list()
        dtype = self.lx.next()[1]
        if dtype not in DTYPES:
            raise ParseError(f"unknown dtype {dtype!r} in scratch")
        return A.Scratch(dtype, tuple(dims))

    def _parse_replicate(self) -> A.Exp:
        dims = self._parse_dim_list()
        return A.Replicate(tuple(dims), self._parse_operand())

    # ------------------------------------------------------------------
    def parse_map(self) -> A.Map:
        self.lx.expect("map")
        self.lx.expect("(")
        _, ivar = self.lx.next()
        self.types[ivar] = ScalarType("i64")
        self.lx.expect("<")
        width = self.parse_poly(stop={")"})
        self.lx.expect(")")
        self.lx.expect("{")
        body = self.parse_block("}")
        return A.Map(width, A.Lambda((ivar,), body))

    def parse_loop(self) -> A.Loop:
        self.lx.expect("loop")
        self.lx.expect("(")
        carried: List[Tuple[str, str]] = []
        while True:
            _, pname = self.lx.next()
            self.lx.expect("=")
            _, init = self.lx.next()
            carried.append((pname, init))
            if self.lx.accept(")"):
                break
            self.lx.expect(",")
        self.lx.expect("for")
        _, ivar = self.lx.next()
        self.types[ivar] = ScalarType("i64")
        self.lx.expect("<")
        count = self.parse_poly(stop={"do"})
        self.lx.expect("do")
        self.lx.expect("{")
        for pname, init in carried:
            init_t = self.types.get(init)
            if init_t is not None:
                self.types[pname] = init_t
        body = self.parse_block("}")
        params = tuple(
            (A.Param(p, self.types.get(p, ScalarType("f32"))), init)
            for p, init in carried
        )
        return A.Loop(params, ivar, count, body)

    def parse_if(self) -> A.If:
        self.lx.expect("if")
        cond = self._parse_operand()
        self.lx.expect("then")
        self.lx.expect("{")
        then_block = self.parse_block("}")
        self.lx.expect("else")
        self.lx.expect("{")
        else_block = self.parse_block("}")
        return A.If(cond, then_block, else_block)

    # ------------------------------------------------------------------
    # Scalars, reads and updates
    # ------------------------------------------------------------------
    def _is_i64(self, op: A.Operand) -> bool:
        if isinstance(op, str):
            t = self.types.get(op)
            return isinstance(t, ScalarType) and t.dtype == "i64"
        if isinstance(op, SymExpr):
            return True
        return isinstance(op, int) and not isinstance(op, bool)

    def _parse_operand(self) -> A.Operand:
        kind, tok = self.lx.peek()
        if kind == "float":
            self.lx.next()
            return float(tok)
        if tok == "-" and self.lx.peek(1)[0] == "float":
            self.lx.next()
            return -float(self.lx.next()[1])
        if tok == "true":
            self.lx.next()
            return True
        if tok == "false":
            self.lx.next()
            return False
        if kind == "int" or tok == "-":
            return self.parse_poly(single_term=False, stop=_STOPWORDS)
        if kind == "name":
            # An i64 variable followed by arithmetic is a polynomial
            # operand (e.g. the `n - 1` in `c == n - 1`).
            t = self.types.get(tok)
            if (
                isinstance(t, ScalarType)
                and t.dtype == "i64"
                and self.lx.peek(1)[1] in ("+", "-", "*", "^")
            ):
                return self.parse_poly(stop=_STOPWORDS)
            self.lx.next()
            return tok
        raise ParseError(f"expected operand, got {tok!r}")

    def parse_scalar_or_access(self) -> A.Exp:
        """Names, literals, indexing, slicing, updates, infix arithmetic."""
        kind, tok = self.lx.peek()

        # Literal with dtype suffix: 2.0f32 lexes as FLOAT NAME;
        # truebool / falsebool lex as one name.
        if kind in ("float", "int") and self.lx.peek(1)[1] in DTYPES:
            self.lx.next()
            dtype = self.lx.next()[1]
            value = float(tok) if "." in tok or "e" in tok else int(tok)
            return A.Lit(value, dtype)
        if tok in ("truebool", "falsebool"):
            self.lx.next()
            return A.Lit(tok == "truebool", "bool")

        # Array access / update: NAME '[' ... or NAME 'with' ...
        if kind == "name" and self.lx.peek(1)[1] == "[":
            return self._parse_access(self.lx.next()[1])
        if kind == "name" and self.lx.peek(1)[1] == "with":
            src = self.lx.next()[1]
            self.lx.expect("with")
            self.lx.expect("[")
            spec = self._parse_spec()
            self.lx.expect("=")
            return A.Update(src, spec, self._parse_operand())

        # Infix scalar expression or plain rebinding.
        left = self._parse_operand()
        op = self.lx.peek()[1]
        if op in _BINOPS:
            self.lx.next()
            right = self._parse_operand()
            if (
                op in ("+", "-", "*")
                and self._is_i64(left)
                and self._is_i64(right)
            ):
                return A.ScalarE(_as_sym(left) .__add__(_as_sym(right)) if op == "+" else (
                    _as_sym(left) - _as_sym(right) if op == "-" else _as_sym(left) * _as_sym(right)
                ))
            return A.BinOp(op, left, right)
        if isinstance(left, str):
            t = self.types.get(left)
            if isinstance(t, ArrayType):
                return A.VarRef(left)
            if self._is_i64(left):
                return A.ScalarE(SymExpr.var(left))
            return A.VarRef(left)
        if isinstance(left, SymExpr):
            return A.ScalarE(left)
        if isinstance(left, float):
            return A.Lit(left, "f32")
        if isinstance(left, bool):
            return A.Lit(left, "bool")
        return A.ScalarE(sym(left))

    def _parse_access(self, src: str) -> A.Exp:
        self.lx.expect("[")
        spec = self._parse_spec()
        if isinstance(spec, A.PointSpec):
            return A.Index(src, spec.indices)
        if isinstance(spec, A.TripletSpec):
            return A.SliceT(src, spec.triplets)
        return A.LmadSlice(src, spec.lmad)

    def _parse_spec(self) -> A.IndexSpec:
        """Parse the inside of ``[...]`` up to and including the ']'."""
        # Lookahead: an LMAD spec contains '{'; a triplet spec contains ':'
        # before the closing bracket at depth 0.
        depth = 0
        is_lmad = False
        is_triplet = False
        j = 0
        while True:
            kind, tok = self.lx.peek(j)
            if kind == "eof":
                break
            if tok == "[":
                depth += 1
            elif tok == "]":
                if depth == 0:
                    break
                depth -= 1
            elif tok == "{" and depth == 0:
                is_lmad = True
                break
            elif tok == ":" and depth == 0:
                is_triplet = True
                break
            j += 1

        if is_lmad:
            lmad = self._parse_lmad()
            self.lx.expect("]")
            return A.LmadSpec(lmad)
        if is_triplet:
            triplets = []
            while True:
                a = self.parse_poly(stop={":"})
                self.lx.expect(":")
                b = self.parse_poly(stop={":"})
                self.lx.expect(":")
                c = self.parse_poly(stop={",", "]"})
                triplets.append((a, b, c))
                if self.lx.accept("]"):
                    break
                self.lx.expect(",")
            return A.TripletSpec(tuple(triplets))
        indices = []
        while True:
            indices.append(self.parse_poly(stop={",", "]"}))
            if self.lx.accept("]"):
                break
            self.lx.expect(",")
        return A.PointSpec(tuple(indices))

    def _parse_lmad(self) -> Lmad:
        offset = self.parse_poly(stop={"{"})
        self.lx.accept("+")  # the separator of `offset + {(n : s), ...}`
        self.lx.expect("{")
        dims: List[LmadDim] = []
        while True:
            self.lx.expect("(")
            shape = self.parse_poly(stop={":"})
            self.lx.expect(":")
            stride = self.parse_poly(stop={")"})
            self.lx.expect(")")
            dims.append(LmadDim(shape, stride))
            if self.lx.accept("}"):
                break
            self.lx.expect(",")
        return Lmad(offset, tuple(dims))

    # ------------------------------------------------------------------
    # Polynomial expressions (SymExpr)
    # ------------------------------------------------------------------
    def parse_poly(
        self,
        stop: Optional[set] = None,
        single_term: bool = False,
    ) -> SymExpr:
        """Parse ``2*a^2*b - c + 1``-style integer polynomials.

        ``single_term`` parses exactly one additive term (used where terms
        are juxtaposed, e.g. ``scratch n m f32``).
        """
        stop = stop or set()
        total = self._parse_poly_term(stop)
        if single_term:
            return total
        while True:
            kind, tok = self.lx.peek()
            if tok in stop or kind == "eof":
                return total
            # Do not swallow a '+'/'-' whose operand is a stop token, e.g.
            # the '+' of an LMAD's `offset + {(n : s)}`.
            if tok in ("+", "-") and self.lx.peek(1)[1] in stop:
                return total
            if tok == "+":
                self.lx.next()
                total = total + self._parse_poly_term(stop)
            elif tok == "-":
                self.lx.next()
                total = total - self._parse_poly_term(stop)
            else:
                return total

    def _parse_poly_term(self, stop: set) -> SymExpr:
        neg = self.lx.accept("-")
        factor = self._parse_poly_factor()
        while self.lx.peek()[1] == "*":
            self.lx.next()
            factor = factor * self._parse_poly_factor()
        return -factor if neg else factor

    def _parse_poly_factor(self) -> SymExpr:
        kind, tok = self.lx.next()
        if tok == "(":
            inner = self.parse_poly(stop={")"})
            self.lx.expect(")")
            base = inner
        elif kind == "int":
            base = sym(int(tok))
        elif kind == "name":
            base = SymExpr.var(tok)
            self.types.setdefault(tok, ScalarType("i64"))
        else:
            raise ParseError(f"expected polynomial factor, got {tok!r}")
        if self.lx.accept("^"):
            power = int(self.lx.next()[1])
            base = base**power
        return base


_STOPWORDS = {"let", "in", "then", "do", "with"}


def _as_sym(op: A.Operand) -> SymExpr:
    if isinstance(op, SymExpr):
        return op
    if isinstance(op, str):
        return SymExpr.var(op)
    return sym(int(op))


def parse_fun(text: str) -> A.Fun:
    """Parse a whole function from the pretty-printed surface syntax."""
    return _Parser(text).parse_fun()


def parse_block(text: str, types: Optional[Dict[str, Type]] = None) -> A.Block:
    """Parse a bare block (``let ... in (...)``)."""
    p = _Parser(text)
    if types:
        p.types.update(types)
    return p.parse_block(end=None)
