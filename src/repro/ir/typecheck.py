"""Type inference and checking for the core IR.

Two entry points:

* :func:`infer_pattern_types` -- the single source of truth for what types
  an expression produces; used both by the :class:`~repro.ir.builder.FunBuilder`
  (to construct patterns) and by the checker.
* :func:`typecheck_fun` -- validates a whole function: scoping, rank and
  dtype agreement, and the uniqueness discipline for in-place updates
  ("the old value of A is not used on any subsequent execution path",
  paper section II-C).

Shape checking is *symbolic*: two dimensions agree when their expressions
are syntactically equal polynomials, and the checker accepts (does not
reject) dimensions it cannot decide -- the standard compromise for a
shape-polymorphic IR.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from repro.symbolic import SymExpr, sym

from repro.ir import ast as A
from repro.ir.types import ArrayType, ScalarType, Type


class TypeError_(Exception):
    """A type error in an IR program (named to avoid the builtin)."""


#: Type given to memory-block bindings (they are opaque to the language).
MEM = ScalarType("i64")

_COMPARISONS = {"<", "<=", "==", "!=", ">", ">="}
_LOGICAL = {"&&", "||"}
_ARITH = {"+", "-", "*", "/", "//", "%", "min", "max", "pow"}
_CONVERSIONS = {"i64", "f32", "f64"}
_FLOAT_UNOPS = {"neg", "sqrt", "exp", "log", "abs"}


def _operand_type(op: A.Operand, env: Mapping[str, Type]) -> Type:
    if isinstance(op, str):
        if op not in env:
            raise TypeError_(f"unbound variable {op!r}")
        return env[op]
    if isinstance(op, bool):
        return ScalarType("bool")
    if isinstance(op, int):
        return ScalarType("i64")
    if isinstance(op, float):
        return ScalarType("f32")
    if isinstance(op, SymExpr):
        for v in op.free_vars():
            if v not in env:
                raise TypeError_(f"unbound variable {v!r} in index expression")
            t = env[v]
            if not isinstance(t, ScalarType) or t.dtype != "i64":
                raise TypeError_(
                    f"index expression uses non-i64 variable {v!r} : {t}"
                )
        return ScalarType("i64")
    raise TypeError_(f"bad operand {op!r}")


def infer_pattern_types(
    exp: A.Exp, env: Mapping[str, Type]
) -> List[Type]:
    """Types of the values an expression produces (one per pattern element)."""
    if isinstance(exp, A.VarRef):
        return [_operand_type(exp.name, env)]
    if isinstance(exp, A.Lit):
        return [ScalarType(exp.dtype)]
    if isinstance(exp, A.ScalarE):
        _operand_type(exp.expr, env)
        return [ScalarType("i64")]
    if isinstance(exp, A.BinOp):
        tx = _operand_type(exp.x, env)
        ty = _operand_type(exp.y, env)
        if not isinstance(tx, ScalarType) or not isinstance(ty, ScalarType):
            raise TypeError_(f"BinOp {exp.op} on non-scalars: {tx}, {ty}")
        if exp.op in _COMPARISONS or exp.op in _LOGICAL:
            return [ScalarType("bool")]
        if exp.op not in _ARITH:
            raise TypeError_(f"unknown binary op {exp.op!r}")
        # Literals adapt to the other operand's dtype.
        if isinstance(exp.x, str):
            return [tx]
        if isinstance(exp.y, str):
            return [ty]
        return [tx]
    if isinstance(exp, A.UnOp):
        tx = _operand_type(exp.x, env)
        if not isinstance(tx, ScalarType):
            raise TypeError_(f"UnOp {exp.op} on non-scalar {tx}")
        if exp.op in _CONVERSIONS:
            return [ScalarType(exp.op)]
        if exp.op in _FLOAT_UNOPS:
            return [tx]
        raise TypeError_(f"unknown unary op {exp.op!r}")
    if isinstance(exp, A.Iota):
        return [ArrayType(exp.dtype, (exp.n,))]
    if isinstance(exp, A.Scratch):
        return [ArrayType(exp.dtype, exp.shape, unique=True)]
    if isinstance(exp, A.Replicate):
        vt = _operand_type(exp.value, env)
        dtype = vt.dtype if isinstance(vt, ScalarType) else exp.dtype
        return [ArrayType(dtype, exp.shape, unique=True)]
    if isinstance(exp, A.Copy):
        t = _array_type(exp.src, env)
        return [ArrayType(t.dtype, t.shape, unique=True)]
    if isinstance(exp, A.Concat):
        ts = [_array_type(s, env) for s in exp.srcs]
        if not ts:
            raise TypeError_("concat of zero arrays")
        first = ts[0]
        for t in ts[1:]:
            if t.dtype != first.dtype or t.rank != first.rank:
                raise TypeError_(f"concat mismatch: {first} vs {t}")
        outer: SymExpr = sym(0)
        for t in ts:
            outer = outer + t.shape[0]
        return [ArrayType(first.dtype, (outer,) + first.shape[1:], unique=True)]
    if isinstance(exp, A.Index):
        t = _array_type(exp.src, env)
        if len(exp.indices) != t.rank:
            raise TypeError_(
                f"indexing rank-{t.rank} array {exp.src} with "
                f"{len(exp.indices)} indices"
            )
        for i in exp.indices:
            _operand_type(i, env)
        return [ScalarType(t.dtype)]
    if isinstance(exp, A.SliceT):
        t = _array_type(exp.src, env)
        if len(exp.triplets) != t.rank:
            raise TypeError_(
                f"slicing rank-{t.rank} array {exp.src} with "
                f"{len(exp.triplets)} triplets"
            )
        shape = tuple(count for _, count, _ in exp.triplets)
        return [ArrayType(t.dtype, shape)]
    if isinstance(exp, A.LmadSlice):
        t = _array_type(exp.src, env)
        if t.rank != 1:
            raise TypeError_(
                f"LMAD slice requires a rank-1 array; {exp.src} : {t}"
            )
        return [ArrayType(t.dtype, exp.lmad.shape)]
    if isinstance(exp, A.Rearrange):
        t = _array_type(exp.src, env)
        if sorted(exp.perm) != list(range(t.rank)):
            raise TypeError_(f"bad permutation {exp.perm} for {t}")
        return [ArrayType(t.dtype, tuple(t.shape[p] for p in exp.perm))]
    if isinstance(exp, A.Reshape):
        t = _array_type(exp.src, env)
        return [ArrayType(t.dtype, exp.shape)]
    if isinstance(exp, A.Reverse):
        t = _array_type(exp.src, env)
        if not 0 <= exp.dim < t.rank:
            raise TypeError_(f"reverse dim {exp.dim} out of range for {t}")
        return [t]
    if isinstance(exp, A.Update):
        t = _array_type(exp.src, env)
        _check_spec(exp.spec, t)
        return [ArrayType(t.dtype, t.shape, unique=True)]
    if isinstance(exp, A.Map):
        body_env = dict(env)
        body_env[exp.lam.params[0]] = ScalarType("i64")
        result_types = _block_types(exp.lam.body, body_env)
        out: List[Type] = []
        for t in result_types:
            if isinstance(t, ScalarType):
                out.append(ArrayType(t.dtype, (exp.width,), unique=True))
            else:
                out.append(
                    ArrayType(t.dtype, (exp.width,) + t.shape, unique=True)
                )
        return out
    if isinstance(exp, A.Loop):
        body_env = dict(env)
        for p, init in exp.carried:
            init_t = _operand_type(init, env)
            _require_same_shape(p.type, init_t, f"loop init of {p.name}")
            body_env[p.name] = p.type
        body_env[exp.index] = ScalarType("i64")
        result_types = _block_types(exp.body, body_env)
        if len(result_types) != len(exp.carried):
            raise TypeError_(
                f"loop body returns {len(result_types)} values for "
                f"{len(exp.carried)} parameters"
            )
        for (p, _), rt in zip(exp.carried, result_types):
            _require_same_shape(p.type, rt, f"loop result of {p.name}")
        return [p.type for p, _ in exp.carried]
    if isinstance(exp, A.If):
        ct = _operand_type(exp.cond, env)
        if not isinstance(ct, ScalarType) or ct.dtype != "bool":
            raise TypeError_(f"if condition has type {ct}")
        then_ts = _block_types(exp.then_block, dict(env))
        else_ts = _block_types(exp.else_block, dict(env))
        if len(then_ts) != len(else_ts):
            raise TypeError_("if branches return different arities")
        for a, b in zip(then_ts, else_ts):
            _require_same_shape(a, b, "if result")
        return then_ts
    if isinstance(exp, A.Reduce):
        t = _array_type(exp.src, env)
        if exp.op not in ("+", "min", "max"):
            raise TypeError_(f"unknown reduction op {exp.op!r}")
        return [ScalarType(t.dtype)]
    if isinstance(exp, A.ArgMin):
        t = _array_type(exp.src, env)
        if t.rank != 1:
            raise TypeError_("argmin requires a rank-1 array")
        return [ScalarType(t.dtype), ScalarType("i64")]
    if isinstance(exp, A.Alloc):
        return [MEM]
    raise TypeError_(f"unknown expression {type(exp).__name__}")


def _array_type(name: str, env: Mapping[str, Type]) -> ArrayType:
    t = _operand_type(name, env)
    if not isinstance(t, ArrayType):
        raise TypeError_(f"{name!r} is not an array (has type {t})")
    return t


def _require_same_shape(a: Type, b: Type, what: str) -> None:
    if isinstance(a, ScalarType) != isinstance(b, ScalarType):
        raise TypeError_(f"{what}: scalar/array mismatch ({a} vs {b})")
    if isinstance(a, ScalarType):
        if a.dtype != b.dtype:
            raise TypeError_(f"{what}: dtype mismatch ({a} vs {b})")
        return
    assert isinstance(b, ArrayType)
    if a.dtype != b.dtype or a.rank != b.rank:
        raise TypeError_(f"{what}: mismatch ({a} vs {b})")
    # Symbolic dimensions: reject only when both are decidably different.
    for da, db in zip(a.shape, b.shape):
        ia, ib = da.as_int(), db.as_int()
        if ia is not None and ib is not None and ia != ib:
            raise TypeError_(f"{what}: shape mismatch ({a} vs {b})")


def _check_spec(spec: A.IndexSpec, t: ArrayType) -> None:
    if isinstance(spec, A.PointSpec):
        if len(spec.indices) != t.rank:
            raise TypeError_(f"point update rank mismatch for {t}")
    elif isinstance(spec, A.TripletSpec):
        if len(spec.triplets) != t.rank:
            raise TypeError_(f"triplet update rank mismatch for {t}")
    elif isinstance(spec, A.LmadSpec):
        if t.rank != 1:
            raise TypeError_("LMAD update requires a rank-1 array")


def _block_types(block: A.Block, env: Dict[str, Type]) -> List[Type]:
    for stmt in block.stmts:
        types = infer_pattern_types(stmt.exp, env)
        if len(types) != len(stmt.pattern):
            raise TypeError_(
                f"pattern of {len(stmt.pattern)} elements bound to "
                f"expression producing {len(types)} values"
            )
        for pe, t in zip(stmt.pattern, types):
            _require_same_shape(pe.type, t, f"binding of {pe.name}")
            env[pe.name] = pe.type
    out = []
    for r in block.result:
        if r not in env:
            raise TypeError_(f"block result {r!r} is unbound")
        out.append(env[r])
    return out


def typecheck_fun(fun: A.Fun) -> List[Type]:
    """Check a function; returns its result types.

    Checks scoping, arity/rank/dtype agreement, and a conservative
    uniqueness discipline: a variable consumed by :class:`~repro.ir.ast.Update`
    (or any alias of it) must not be used by a later statement of the same
    or an enclosing block.
    """
    env: Dict[str, Type] = {}
    for p in fun.params:
        if isinstance(p.type, ArrayType):
            # Shape variables are implicitly in scope as i64 scalars.
            for s in p.type.shape:
                for v in s.free_vars():
                    env.setdefault(v, ScalarType("i64"))
        env[p.name] = p.type
    result = _block_types(fun.body, env)
    _check_uniqueness(fun)
    return result


def _check_uniqueness(fun: A.Fun) -> None:
    from repro.ir.alias import analyze_aliases

    aliases = analyze_aliases(fun)

    def walk(block: A.Block, consumed: set, defined: set) -> None:
        for stmt in block.stmts:
            used = A.exp_uses(stmt.exp)
            bad = used & consumed
            if bad:
                raise TypeError_(
                    f"use of consumed array(s) {sorted(bad)} in binding of "
                    f"{stmt.names}"
                )
            if isinstance(stmt.exp, A.Loop):
                inner_defined = defined | {p.name for p, _ in stmt.exp.carried}
                inner_defined.add(stmt.exp.index)
                walk(stmt.exp.body, consumed, inner_defined)
            elif isinstance(stmt.exp, A.Map):
                walk(stmt.exp.lam.body, consumed, defined | set(stmt.exp.lam.params))
            elif isinstance(stmt.exp, A.If):
                walk(stmt.exp.then_block, consumed, set(defined))
                walk(stmt.exp.else_block, consumed, set(defined))
            if isinstance(stmt.exp, A.Update):
                # Consumption is flow-sensitive: only names that already
                # exist alias the *old* value; the update's fresh result
                # (and anything derived from it later) stays live.
                consumed |= (
                    aliases.closure(stmt.exp.src) & defined
                ) - set(stmt.names)
            # Loop-carried initializers are consumed by the loop.
            if isinstance(stmt.exp, A.Loop):
                for _, init in stmt.exp.carried:
                    consumed |= (aliases.closure(init) & defined) - set(
                        stmt.names
                    )
            defined |= set(stmt.names)
        for r in block.result:
            if r in consumed:
                # Returning a consumed name is fine only for the Update's
                # own result, which is a fresh name -- so this is an error.
                raise TypeError_(f"block returns consumed array {r!r}")

    walk(fun.body, set(), {p.name for p in fun.params})
