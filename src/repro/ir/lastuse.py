"""Last-use analysis: the ``b^lu`` annotations of paper section V.

A variable is *lastly used* at a statement when neither it nor any alias of
it can be used on any execution path after that statement.  The analysis is
a backward walk per block:

* block results (and anything live after the block) are live;
* inside ``loop``/``map`` bodies, variables free in the body but defined
  outside are never lastly used there -- the next iteration/thread will use
  them again;
* loop parameters and locally-bound names *can* be lastly used inside the
  body (this is what lets the NW update inside the loop be a circuit point).

Results are stored in-place in each :class:`repro.ir.ast.Let`'s
``last_uses`` field, and summarised in the returned :class:`LastUseInfo`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from repro.ir import ast as A
from repro.ir.alias import AliasInfo, analyze_aliases


@dataclass
class LastUseInfo:
    """Queryable summary of last uses (statements are identified by id())."""

    aliases: AliasInfo
    per_stmt: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_last_use(self, stmt: A.Let, var: str) -> bool:
        return var in self.per_stmt.get(id(stmt), frozenset())


def analyze_last_uses(fun: A.Fun) -> LastUseInfo:
    """Annotate every statement of ``fun`` with its last-used variables."""
    aliases = analyze_aliases(fun)
    info = LastUseInfo(aliases)

    def closure_of(names) -> Set[str]:
        out: Set[str] = set()
        for v in names:
            out |= aliases.closure(v)
        return out

    def walk(block: A.Block, live_after: Set[str]) -> None:
        live = set(live_after) | closure_of(block.result)
        for stmt in reversed(block.stmts):
            uses = A.exp_uses(stmt.exp)
            lu = frozenset(
                v for v in uses if not (aliases.closure(v) & live)
            )
            stmt.last_uses = lu
            info.per_stmt[id(stmt)] = lu
            if isinstance(stmt.exp, (A.Loop, A.Map)):
                # Free variables of the body are re-used by later
                # iterations/threads, so they stay live inside.  Loop
                # initializers are exempt: they are *consumed* by the loop
                # (uniqueness), so nothing after the loop can read them,
                # and within the body their buffer is reachable only
                # through the (separately tracked) parameter.
                keep = set(uses)
                if isinstance(stmt.exp, A.Loop):
                    keep -= {init for _, init in stmt.exp.carried}
                inner_live = live | closure_of(keep)
                for blk in A.sub_blocks(stmt.exp):
                    walk(blk, inner_live)
            elif isinstance(stmt.exp, A.If):
                for blk in A.sub_blocks(stmt.exp):
                    walk(blk, set(live))
            live |= closure_of(uses)
        # (Definitions do not make names live before their binding.)

    walk(fun.body, set())
    return info
