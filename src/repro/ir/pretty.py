"""Pretty-printer for IR programs (with optional memory annotations).

The output mimics the paper's notation:

    let (X : [q][b][b]f32 @ mem_1 -> i*b+n+1 + {(i+1 : n*b-b), ...}) =
      map (j < q) { ... }
"""

from __future__ import annotations

from typing import List

from repro.ir import ast as A


def pretty_fun(fun: A.Fun) -> str:
    lines: List[str] = []
    params = ", ".join(f"{p.name} : {p.type}" for p in fun.params)
    lines.append(f"fun {fun.name}({params}) =")
    _pretty_block(fun.body, lines, indent=1)
    return "\n".join(lines)


def pretty_block(block: A.Block) -> str:
    lines: List[str] = []
    _pretty_block(block, lines, indent=0)
    return "\n".join(lines)


def _pretty_block(block: A.Block, lines: List[str], indent: int) -> None:
    pad = "  " * indent
    for stmt in block.stmts:
        pat = ", ".join(str(pe) for pe in stmt.pattern)
        lu = (
            "  -- last use: " + ", ".join(sorted(stmt.last_uses))
            if stmt.last_uses
            else ""
        )
        head = f"{pad}let ({pat}) ="
        exp = stmt.exp
        if isinstance(exp, (A.Map, A.Loop, A.If)):
            lines.append(head + lu)
            _pretty_compound(exp, lines, indent + 1)
        else:
            lines.append(f"{head} {_pretty_exp(exp)}{lu}")
    lines.append(f"{pad}in ({', '.join(block.result)})")


def _pretty_compound(exp: A.Exp, lines: List[str], indent: int) -> None:
    pad = "  " * indent
    if isinstance(exp, A.Map):
        lines.append(f"{pad}map ({exp.lam.params[0]} < {exp.width}) {{")
        _pretty_block(exp.lam.body, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(exp, A.Loop):
        carried = ", ".join(f"{p.name} = {init}" for p, init in exp.carried)
        lines.append(f"{pad}loop ({carried}) for {exp.index} < {exp.count} do {{")
        _pretty_block(exp.body, lines, indent + 1)
        lines.append(f"{pad}}}")
    elif isinstance(exp, A.If):
        lines.append(f"{pad}if {_operand_str(exp.cond)} then {{")
        _pretty_block(exp.then_block, lines, indent + 1)
        lines.append(f"{pad}}} else {{")
        _pretty_block(exp.else_block, lines, indent + 1)
        lines.append(f"{pad}}}")


def _operand_str(op: A.Operand) -> str:
    return str(op)


def _triplets_str(triplets) -> str:
    return ", ".join(f"{a}:{b}:{c}" for a, b, c in triplets)


def _pretty_exp(exp: A.Exp) -> str:
    if isinstance(exp, A.VarRef):
        return exp.name
    if isinstance(exp, A.Lit):
        if exp.dtype == "bool":
            return f"{'true' if exp.value else 'false'}{exp.dtype}"
        return f"{exp.value}{exp.dtype}"
    if isinstance(exp, A.ScalarE):
        return str(exp.expr)
    if isinstance(exp, A.BinOp):
        return f"{_operand_str(exp.x)} {exp.op} {_operand_str(exp.y)}"
    if isinstance(exp, A.UnOp):
        return f"{exp.op} {_operand_str(exp.x)}"
    if isinstance(exp, A.Iota):
        return f"iota {exp.n}"
    if isinstance(exp, A.Scratch):
        dims = ", ".join(str(s) for s in exp.shape)
        return f"scratch [{dims}] {exp.dtype}"
    if isinstance(exp, A.Replicate):
        dims = ", ".join(str(s) for s in exp.shape)
        return f"replicate [{dims}] {_operand_str(exp.value)}"
    if isinstance(exp, A.Copy):
        return f"copy {exp.src}"
    if isinstance(exp, A.Concat):
        return "concat " + " ".join(exp.srcs)
    if isinstance(exp, A.Index):
        return f"{exp.src}[{', '.join(str(i) for i in exp.indices)}]"
    if isinstance(exp, A.SliceT):
        return f"{exp.src}[{_triplets_str(exp.triplets)}]"
    if isinstance(exp, A.LmadSlice):
        return f"{exp.src}[{exp.lmad}]"
    if isinstance(exp, A.Rearrange):
        return f"rearrange {exp.perm} {exp.src}"
    if isinstance(exp, A.Reshape):
        dims = ", ".join(str(s) for s in exp.shape)
        return f"reshape [{dims}] {exp.src}"
    if isinstance(exp, A.Reverse):
        return f"reverse@{exp.dim} {exp.src}"
    if isinstance(exp, A.Update):
        if isinstance(exp.spec, A.PointSpec):
            w = ", ".join(str(i) for i in exp.spec.indices)
        elif isinstance(exp.spec, A.TripletSpec):
            w = _triplets_str(exp.spec.triplets)
        else:
            w = str(exp.spec.lmad)
        return f"{exp.src} with [{w}] = {_operand_str(exp.value)}"
    if isinstance(exp, A.Reduce):
        return f"reduce ({exp.op}) {exp.src}"
    if isinstance(exp, A.ArgMin):
        return f"argmin {exp.src}"
    if isinstance(exp, A.Alloc):
        tag = f" @ {exp.space}" if exp.space != "hbm" else ""
        return f"alloc ({exp.size} x {exp.dtype}{tag})"
    return f"<{type(exp).__name__}>"
