"""Types of the core IR: scalars and arrays with symbolic shapes.

Array shapes are tuples of :class:`repro.symbolic.SymExpr`, so programs are
*shape-polymorphic*: one IR program covers every dataset size, and the
compiler's index analyses reason about the symbolic shapes directly.

Uniqueness (the ``*`` annotation of Futhark) marks arrays that may be
consumed by in-place updates; the type checker enforces that a consumed
array is dead afterwards (paper section II-C, citing the PLDI'17 uniqueness
type system).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

from repro.symbolic import SymExpr, sym
from repro.symbolic.expr import ExprLike

#: Element types supported by the mini-language.
DTYPES = ("i64", "f32", "f64", "bool")

#: numpy dtype string and element size in bytes for each IR dtype.
DTYPE_INFO = {
    "i64": ("int64", 8),
    "f32": ("float32", 4),
    "f64": ("float64", 8),
    "bool": ("bool", 1),
}


@dataclass(frozen=True)
class ScalarType:
    """A primitive type: ``i64``, ``f32``, ``f64`` or ``bool``."""

    dtype: str

    def __post_init__(self):
        if self.dtype not in DTYPES:
            raise ValueError(f"unknown dtype {self.dtype!r}")

    @property
    def itemsize(self) -> int:
        return DTYPE_INFO[self.dtype][1]

    @property
    def np_dtype(self) -> str:
        return DTYPE_INFO[self.dtype][0]

    def __str__(self) -> str:
        return self.dtype


@dataclass(frozen=True)
class ArrayType:
    """An array type ``[d1]..[dq]dtype`` with symbolic dimensions.

    ``unique`` corresponds to Futhark's ``*`` annotation: the value may be
    consumed (updated in place).
    """

    dtype: str
    shape: Tuple[SymExpr, ...]
    unique: bool = False

    def __post_init__(self):
        if self.dtype not in DTYPES:
            raise ValueError(f"unknown dtype {self.dtype!r}")
        object.__setattr__(self, "shape", tuple(sym(s) for s in self.shape))

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def itemsize(self) -> int:
        return DTYPE_INFO[self.dtype][1]

    @property
    def np_dtype(self) -> str:
        return DTYPE_INFO[self.dtype][0]

    def size(self) -> SymExpr:
        total: SymExpr = sym(1)
        for s in self.shape:
            total = total * s
        return total

    def elem_type(self) -> Union["ArrayType", ScalarType]:
        """Type of one element along the outermost dimension."""
        if self.rank == 1:
            return ScalarType(self.dtype)
        return ArrayType(self.dtype, self.shape[1:])

    def with_unique(self, unique: bool = True) -> "ArrayType":
        return ArrayType(self.dtype, self.shape, unique)

    def __str__(self) -> str:
        dims = "".join(f"[{s}]" for s in self.shape)
        star = "*" if self.unique else ""
        return f"{star}{dims}{self.dtype}"


Type = Union[ScalarType, ArrayType]


def f32(*shape: ExprLike) -> Type:
    """``f32(n, m)`` is ``[n][m]f32``; ``f32()`` is the scalar type."""
    return ArrayType("f32", tuple(shape)) if shape else ScalarType("f32")


def f64(*shape: ExprLike) -> Type:
    return ArrayType("f64", tuple(shape)) if shape else ScalarType("f64")


def i64(*shape: ExprLike) -> Type:
    return ArrayType("i64", tuple(shape)) if shape else ScalarType("i64")


def boolean(*shape: ExprLike) -> Type:
    return ArrayType("bool", tuple(shape)) if shape else ScalarType("bool")
