"""Alias analysis: which IR names may refer to the same underlying array.

Change-of-layout operations (slices, rearrange, reshape, reverse) alias
their source; ``Update`` results alias the consumed source (same memory);
``if``/``loop`` results alias whatever the branches/body return.  Fresh
constructors (``iota``, ``scratch``, ``copy``, ``concat``, ``replicate``,
``map``) alias nothing.

The short-circuiting pass needs the *closure*: when rebasing a candidate
``bs``, every alias of ``bs`` must receive a translated index function
(paper section V, property 3), and the last-use analysis must treat an
access to any alias as an access to all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from repro.ir import ast as A


@dataclass
class AliasInfo:
    """Symmetric alias relation over variable names."""

    edges: Dict[str, Set[str]] = field(default_factory=dict)

    def add(self, a: str, b: str) -> None:
        self.edges.setdefault(a, set()).add(b)
        self.edges.setdefault(b, set()).add(a)

    def closure(self, name: str) -> FrozenSet[str]:
        """All names transitively aliased with ``name`` (including itself)."""
        seen = {name}
        frontier = [name]
        while frontier:
            cur = frontier.pop()
            for nxt in self.edges.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def may_alias(self, a: str, b: str) -> bool:
        return b in self.closure(a)


_LAYOUT_OPS = (A.SliceT, A.LmadSlice, A.Rearrange, A.Reshape, A.Reverse)


def analyze_aliases(fun: A.Fun) -> AliasInfo:
    """Compute the alias relation for a whole function."""
    info = AliasInfo()

    def walk(block: A.Block) -> None:
        for stmt in block.stmts:
            exp = stmt.exp
            if isinstance(exp, A.VarRef):
                info.add(stmt.names[0], exp.name)
            elif isinstance(exp, _LAYOUT_OPS):
                info.add(stmt.names[0], exp.src)
            elif isinstance(exp, A.Update):
                # The update result occupies the memory of the consumed src.
                info.add(stmt.names[0], exp.src)
            elif isinstance(exp, A.If):
                walk(exp.then_block)
                walk(exp.else_block)
                for name, tres, eres in zip(
                    stmt.names, exp.then_block.result, exp.else_block.result
                ):
                    info.add(name, tres)
                    info.add(name, eres)
            elif isinstance(exp, A.Loop):
                walk(exp.body)
                for (p, init), name, bres in zip(
                    exp.carried, stmt.names, exp.body.result
                ):
                    info.add(p.name, init)
                    info.add(name, bres)
                    # Note: no param <-> body-result edge.  The buffer a
                    # body result passes to the next iteration's parameter
                    # is already kept live by block-result liveness, and
                    # the extra edge would merge every iteration's values
                    # into one alias class, destroying last-use precision
                    # (e.g. the NN benchmark's dead-copy reuse).
            elif isinstance(exp, A.Map):
                walk(exp.lam.body)
                # Map results are fresh; body-internal aliases were recorded.
        # Block results carry no new aliasing by themselves.

    walk(fun.body)
    return info
