"""Fluent construction API for IR programs.

Writing administrative-normal-form AST by hand is painful; the builder lets
benchmark programs read like the paper's pseudo-code:

    b = FunBuilder("nw")
    b.define("n", q * bsz + 1)
    A = b.param("A", f32(n * n))
    lp = b.loop(count=q, carried=[("Acur", A)], index="i")
    rv = lp.lmad_slice(lp["Acur"], rvert_lmad)
    ...
    lp.returns(updated)
    (A2,) = lp.end()
    b.returns(A2)
    fun = b.build()

Every emitter infers the result types via
:func:`repro.ir.typecheck.infer_pattern_types` (the same inference the
checker uses), generates fresh names unless given one, and returns the
bound name(s).  Compound statements (``loop``/``map_``/``if_``) hand back a
sub-builder; call ``end()`` (or use ``with``) to emit them into the parent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.lmad.lmad import Lmad
from repro.symbolic import SymExpr, sym
from repro.symbolic.expr import ExprLike

from repro.ir import ast as A
from repro.ir.types import ArrayType, ScalarType, Type
from repro.ir.typecheck import infer_pattern_types, typecheck_fun


class BlockBuilder:
    """Accumulates statements for one block; scoped type environment."""

    def __init__(self, root: "FunBuilder", parent: Optional["BlockBuilder"]):
        self._root = root
        self._parent = parent
        self._types: Dict[str, Type] = {}
        self._stmts: List[A.Let] = []
        self._result: Optional[Tuple[str, ...]] = None

    # ------------------------------------------------------------------
    # Environment
    # ------------------------------------------------------------------
    def lookup(self, name: str) -> Type:
        scope: Optional[BlockBuilder] = self
        while scope is not None:
            if name in scope._types:
                return scope._types[name]
            scope = scope._parent
        raise KeyError(f"unbound variable {name!r}")

    def _type_env(self) -> Dict[str, Type]:
        chain: List[BlockBuilder] = []
        scope: Optional[BlockBuilder] = self
        while scope is not None:
            chain.append(scope)
            scope = scope._parent
        env: Dict[str, Type] = {}
        for scope in reversed(chain):
            env.update(scope._types)
        return env

    def _bind(self, name: str, t: Type) -> None:
        self._types[name] = t

    # ------------------------------------------------------------------
    # Core emitter
    # ------------------------------------------------------------------
    def emit(
        self, exp: A.Exp, names: Optional[Sequence[Optional[str]]] = None
    ) -> Tuple[str, ...]:
        """Emit ``let <names> = exp``; infer types; return the bound names."""
        types = infer_pattern_types(exp, self._type_env())
        if names is None:
            names = [None] * len(types)
        if len(names) != len(types):
            raise ValueError(
                f"expression produces {len(types)} values, got {len(names)} names"
            )
        pattern = []
        out = []
        for name, t in zip(names, types):
            if name is not None:
                self._root._used_names.add(name)
            final = name if name is not None else self._root.fresh()
            pattern.append(A.PatElem(final, t))
            self._bind(final, t)
            out.append(final)
        self._stmts.append(A.Let(pattern, exp))
        return tuple(out)

    def returns(self, *names: str) -> None:
        for n in names:
            self.lookup(n)  # raises on unbound
        self._result = tuple(names)

    def _block(self) -> A.Block:
        if self._result is None:
            raise ValueError("block has no result; call returns(...)")
        return A.Block(self._stmts, self._result)

    # ------------------------------------------------------------------
    # Scalar emitters
    # ------------------------------------------------------------------
    def lit(self, value, dtype: str = "f32", name: Optional[str] = None) -> str:
        return self.emit(A.Lit(value, dtype), [name])[0]

    def scalar(self, expr: ExprLike, name: Optional[str] = None) -> SymExpr:
        """Bind an integer scalar computation; returns it as a variable."""
        (n,) = self.emit(A.ScalarE(sym(expr)), [name])
        return SymExpr.var(n)

    def binop(self, op: str, x: A.Operand, y: A.Operand, name=None) -> str:
        return self.emit(A.BinOp(op, x, y), [name])[0]

    def unop(self, op: str, x: A.Operand, name=None) -> str:
        return self.emit(A.UnOp(op, x), [name])[0]

    # ------------------------------------------------------------------
    # Array constructors
    # ------------------------------------------------------------------
    def iota(self, n: ExprLike, dtype: str = "i64", name=None) -> str:
        return self.emit(A.Iota(sym(n), dtype), [name])[0]

    def scratch(self, dtype: str, shape: Sequence[ExprLike], name=None) -> str:
        return self.emit(A.Scratch(dtype, tuple(sym(s) for s in shape)), [name])[0]

    def replicate(
        self, shape: Sequence[ExprLike], value: A.Operand, dtype="f32", name=None
    ) -> str:
        return self.emit(
            A.Replicate(tuple(sym(s) for s in shape), value, dtype), [name]
        )[0]

    def copy(self, src: str, name=None) -> str:
        return self.emit(A.Copy(src), [name])[0]

    def concat(self, *srcs: str, name=None) -> str:
        return self.emit(A.Concat(tuple(srcs)), [name])[0]

    # ------------------------------------------------------------------
    # Reads and change-of-layout ops
    # ------------------------------------------------------------------
    def index(self, src: str, indices: Sequence[ExprLike], name=None) -> str:
        return self.emit(A.Index(src, tuple(sym(i) for i in indices)), [name])[0]

    def slice(self, src: str, triplets, name=None) -> str:
        return self.emit(A.SliceT(src, tuple(triplets)), [name])[0]

    def lmad_slice(self, src: str, lmad: Lmad, name=None) -> str:
        return self.emit(A.LmadSlice(src, lmad), [name])[0]

    def rearrange(self, src: str, perm: Sequence[int], name=None) -> str:
        return self.emit(A.Rearrange(src, tuple(perm)), [name])[0]

    def transpose(self, src: str, name=None) -> str:
        rank = self.lookup(src).rank  # type: ignore[union-attr]
        return self.rearrange(src, tuple(reversed(range(rank))), name)

    def reshape(self, src: str, shape: Sequence[ExprLike], name=None) -> str:
        return self.emit(A.Reshape(src, tuple(sym(s) for s in shape)), [name])[0]

    def reverse(self, src: str, dim: int, name=None) -> str:
        return self.emit(A.Reverse(src, dim), [name])[0]

    def flatten(self, src: str, name=None) -> str:
        t = self.lookup(src)
        assert isinstance(t, ArrayType)
        return self.reshape(src, [t.size()], name)

    # ------------------------------------------------------------------
    # Updates and reductions
    # ------------------------------------------------------------------
    def update_point(
        self, src: str, indices: Sequence[ExprLike], value: A.Operand, name=None
    ) -> str:
        spec = A.PointSpec(tuple(sym(i) for i in indices))
        return self.emit(A.Update(src, spec, value), [name])[0]

    def update_slice(self, src: str, triplets, value: str, name=None) -> str:
        spec = A.TripletSpec(tuple(triplets))
        return self.emit(A.Update(src, spec, value), [name])[0]

    def update_lmad(self, src: str, lmad: Lmad, value: str, name=None) -> str:
        spec = A.LmadSpec(lmad)
        return self.emit(A.Update(src, spec, value), [name])[0]

    def reduce(self, op: str, src: str, name=None) -> str:
        return self.emit(A.Reduce(op, src), [name])[0]

    def argmin(self, src: str, names=(None, None)) -> Tuple[str, str]:
        v, i = self.emit(A.ArgMin(src), list(names))
        return v, i

    # ------------------------------------------------------------------
    # Compound statements
    # ------------------------------------------------------------------
    def loop(
        self,
        count: ExprLike,
        carried: Sequence[Tuple[str, str]],
        index: str = "i",
        names: Optional[Sequence[str]] = None,
    ) -> "LoopBuilder":
        return LoopBuilder(self, sym(count), list(carried), index, names)

    def map_(
        self,
        width: ExprLike,
        index: str = "i",
        names: Optional[Sequence[str]] = None,
    ) -> "MapBuilder":
        return MapBuilder(self, sym(width), index, names)

    def if_(
        self, cond: A.Operand, names: Optional[Sequence[str]] = None
    ) -> "IfBuilder":
        return IfBuilder(self, cond, names)


class LoopBuilder(BlockBuilder):
    """Body builder for a sequential loop; ``self[param]`` names are bound."""

    def __init__(self, parent, count, carried, index, names):
        super().__init__(parent._root, parent)
        self._emit_into = parent
        self._count = count
        self._index = parent._root.unique(index)
        self._names = names
        self._carried: List[Tuple[A.Param, str]] = []
        self._param_alias: Dict[str, str] = {}
        self._bind(self._index, ScalarType("i64"))
        for pname, init in carried:
            actual = parent._root.unique(pname)
            self._param_alias[pname] = actual
            t = parent.lookup(init)
            self._carried.append((A.Param(actual, t), init))
            self._bind(actual, t)
        self.results: Tuple[str, ...] = ()

    def __getitem__(self, pname: str) -> str:
        if pname in self._param_alias:
            return self._param_alias[pname]
        for p, _ in self._carried:
            if p.name == pname:
                return pname
        raise KeyError(pname)

    @property
    def idx(self) -> SymExpr:
        """The loop index as a symbolic variable."""
        return SymExpr.var(self._index)

    def end(self) -> Tuple[str, ...]:
        exp = A.Loop(tuple(self._carried), self._index, self._count, self._block())
        self.results = self._emit_into.emit(exp, self._names)
        return self.results

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.end()
        return False


class MapBuilder(BlockBuilder):
    """Body builder for a mapnest; the thread index is ``self.index``."""

    def __init__(self, parent, width, index, names):
        super().__init__(parent._root, parent)
        self._emit_into = parent
        self._width = width
        self._index = parent._root.unique(index)
        self._names = names
        self._bind(self._index, ScalarType("i64"))
        self.results: Tuple[str, ...] = ()

    @property
    def idx(self) -> SymExpr:
        """The thread index as a symbolic variable."""
        return SymExpr.var(self._index)

    def end(self) -> Tuple[str, ...]:
        lam = A.Lambda((self._index,), self._block())
        exp = A.Map(self._width, lam)
        self.results = self._emit_into.emit(exp, self._names)
        return self.results

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.end()
        return False


class IfBuilder:
    """Builders for the two branches of an ``if``; emits on ``end()``."""

    def __init__(self, parent: BlockBuilder, cond: A.Operand, names):
        self._parent = parent
        self._cond = cond
        self._names = names
        self.then_builder = BlockBuilder(parent._root, parent)
        self.else_builder = BlockBuilder(parent._root, parent)
        self.results: Tuple[str, ...] = ()

    def end(self) -> Tuple[str, ...]:
        exp = A.If(
            self._cond,
            self.then_builder._block(),
            self.else_builder._block(),
        )
        self.results = self._parent.emit(exp, self._names)
        return self.results


class FunBuilder(BlockBuilder):
    """Top-level builder for a function."""

    def __init__(self, name: str):
        self._name = name
        self._counter = 0
        self._params: List[A.Param] = []
        self._assumptions: List[Tuple[str, str, SymExpr]] = []
        self._used_names: set = set()
        super().__init__(self, None)

    def fresh(self, prefix: str = "t") -> str:
        self._counter += 1
        name = f"{prefix}_{self._counter}"
        self._used_names.add(name)
        return name

    def unique(self, name: str) -> str:
        """Return ``name`` if unused, else a suffixed variant.

        Program-wide uniqueness keeps the (flow-insensitive) alias relation
        precise: reusing e.g. a loop-parameter name across two loops would
        merge their alias classes.
        """
        if name not in self._used_names:
            self._used_names.add(name)
            return name
        self._counter += 1
        fresh = f"{name}_{self._counter}"
        self._used_names.add(fresh)
        return fresh

    # ------------------------------------------------------------------
    # Interface declarations
    # ------------------------------------------------------------------
    def param(self, name: str, t: Type) -> str:
        self._used_names.add(name)
        # Shape variables are implicitly in scope as i64 scalars.
        if isinstance(t, ArrayType):
            for s in t.shape:
                for v in s.free_vars():
                    if v not in self._types:
                        self._bind(v, ScalarType("i64"))
        self._params.append(A.Param(name, t))
        self._bind(name, t)
        return name

    def size_param(self, name: str) -> SymExpr:
        """An i64 parameter used in shapes; returned as a symbolic var."""
        self.param(name, ScalarType("i64"))
        return SymExpr.var(name)

    def define(self, var: str, expr: ExprLike) -> None:
        """Dataset invariant: ``var == expr`` (e.g. NW's n = q*b + 1)."""
        self._assumptions.append(("define", var, sym(expr)))

    def assume_lower(self, var: str, lo: ExprLike) -> None:
        self._assumptions.append(("lower", var, sym(lo)))

    def assume_upper(self, var: str, hi: ExprLike) -> None:
        self._assumptions.append(("upper", var, sym(hi)))

    # ------------------------------------------------------------------
    def build(self, check: bool = True) -> A.Fun:
        fun = A.Fun(
            self._name, list(self._params), self._block(), tuple(self._assumptions)
        )
        if check:
            typecheck_fun(fun)
        return fun
