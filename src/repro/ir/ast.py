"""AST of the core array IR (administrative normal form).

A program (:class:`Fun`) is a parameter list plus a :class:`Block`.  A block
is a sequence of :class:`Let` statements and a tuple of result variable
names.  Each ``Let`` binds a *pattern* (list of :class:`PatElem`) to exactly
one expression; expression operands are variable names, literals, or
symbolic integer expressions (:class:`repro.symbolic.SymExpr`) over scalar
``i64`` variables -- the latter mirrors how a real compiler keeps index
arithmetic transparent to the analyses.

Memory is *not* part of the language semantics: pattern elements carry an
optional ``mem`` annotation (filled in by :mod:`repro.mem.introduce`) that
can be deleted without changing the meaning of the program (paper section
I, "the memory information can be seen as an add-on to the IR").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple, Union

from repro.lmad.lmad import Lmad
from repro.symbolic import SymExpr, sym

from repro.ir.types import ArrayType, Type

#: Operand of a scalar expression: a variable name, a literal, or a
#: symbolic integer expression over i64 variables.
Operand = Union[str, int, float, bool, SymExpr]


# ======================================================================
# Patterns and parameters
# ======================================================================
@dataclass
class PatElem:
    """One bound variable of a pattern, with its type and memory add-on.

    ``mem`` is ``None`` until the memory introduction pass runs; afterwards
    it is a :class:`repro.mem.memir.MemBinding` for array-typed elements.
    """

    name: str
    type: Type
    mem: Optional[Any] = None

    def is_array(self) -> bool:
        return isinstance(self.type, ArrayType)

    def __str__(self) -> str:
        s = f"{self.name} : {self.type}"
        if self.mem is not None:
            s += f" @ {self.mem}"
        return s


@dataclass(frozen=True)
class Param:
    """A function or loop parameter."""

    name: str
    type: Type

    def is_array(self) -> bool:
        return isinstance(self.type, ArrayType)


# ======================================================================
# Index specifications for reads/updates
# ======================================================================
@dataclass(frozen=True)
class PointSpec:
    """A full scalar index ``[i, j, ...]``."""

    indices: Tuple[SymExpr, ...]

    def __post_init__(self):
        object.__setattr__(self, "indices", tuple(sym(i) for i in self.indices))


@dataclass(frozen=True)
class TripletSpec:
    """Per-dimension triplet slices ``[start : count : step, ...]``."""

    triplets: Tuple[Tuple[SymExpr, SymExpr, SymExpr], ...]

    def __post_init__(self):
        object.__setattr__(
            self,
            "triplets",
            tuple((sym(a), sym(b), sym(c)) for a, b, c in self.triplets),
        )


@dataclass(frozen=True)
class LmadSpec:
    """A generalized LMAD slice (paper section III-B); rank-1 arrays only."""

    lmad: Lmad


IndexSpec = Union[PointSpec, TripletSpec, LmadSpec]


# ======================================================================
# Expressions
# ======================================================================
class Exp:
    """Base class for all right-hand-side expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class VarRef(Exp):
    """Aliasing re-binding: ``let y = x``."""

    name: str


@dataclass(frozen=True)
class Lit(Exp):
    """A literal scalar."""

    value: Union[int, float, bool]
    dtype: str = "f32"


@dataclass(frozen=True)
class ScalarE(Exp):
    """An integer scalar computation as a symbolic expression.

    Bindings of this form feed the short-circuiting pass's symbol table for
    index-function translation (paper section V-A-b).
    """

    expr: SymExpr

    def __post_init__(self):
        object.__setattr__(self, "expr", sym(self.expr))


@dataclass(frozen=True)
class BinOp(Exp):
    """Scalar binary operation; ``op`` in +,-,*,/,//,%,min,max,pow,<,<=,==,&&,||."""

    op: str
    x: Operand
    y: Operand


@dataclass(frozen=True)
class UnOp(Exp):
    """Scalar unary operation; ``op`` in neg,sqrt,exp,log,abs,i64,f32,f64."""

    op: str
    x: Operand


@dataclass(frozen=True)
class Iota(Exp):
    """``iota n = [0, 1, ..., n-1]`` (fresh array)."""

    n: SymExpr
    dtype: str = "i64"

    def __post_init__(self):
        object.__setattr__(self, "n", sym(self.n))


@dataclass(frozen=True)
class Scratch(Exp):
    """``scratch d1 .. dq t``: fresh array with uninitialized contents."""

    dtype: str
    shape: Tuple[SymExpr, ...]

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(sym(s) for s in self.shape))


@dataclass(frozen=True)
class Replicate(Exp):
    """Fresh array of ``shape`` filled with a scalar operand."""

    shape: Tuple[SymExpr, ...]
    value: Operand
    dtype: str = "f32"

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(sym(s) for s in self.shape))


@dataclass(frozen=True)
class Copy(Exp):
    """Manifest a (possibly layout-transformed) array as a fresh row-major one."""

    src: str


@dataclass(frozen=True)
class Concat(Exp):
    """Concatenate arrays along the outermost dimension (fresh array)."""

    srcs: Tuple[str, ...]


@dataclass(frozen=True)
class Index(Exp):
    """Scalar read ``a[i, j, ...]``."""

    src: str
    indices: Tuple[SymExpr, ...]

    def __post_init__(self):
        object.__setattr__(self, "indices", tuple(sym(i) for i in self.indices))


@dataclass(frozen=True)
class SliceT(Exp):
    """Triplet-slice read (O(1) change-of-layout)."""

    src: str
    triplets: Tuple[Tuple[SymExpr, SymExpr, SymExpr], ...]

    def __post_init__(self):
        object.__setattr__(
            self,
            "triplets",
            tuple((sym(a), sym(b), sym(c)) for a, b, c in self.triplets),
        )


@dataclass(frozen=True)
class LmadSlice(Exp):
    """Generalized LMAD-slice read of a rank-1 array (O(1), paper III-B)."""

    src: str
    lmad: Lmad


@dataclass(frozen=True)
class Rearrange(Exp):
    """Permute dimensions (O(1)); ``perm[i]`` is the source of new dim i."""

    src: str
    perm: Tuple[int, ...]


@dataclass(frozen=True)
class Reshape(Exp):
    """Change the shape, preserving row-major element order (O(1))."""

    src: str
    shape: Tuple[SymExpr, ...]

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(sym(s) for s in self.shape))


@dataclass(frozen=True)
class Reverse(Exp):
    """Reverse one dimension (O(1))."""

    src: str
    dim: int


@dataclass(frozen=True)
class Update(Exp):
    """``src with [spec] = value``: functional in-place update.

    Consumes ``src`` (uniqueness); the result is a new name for the updated
    array.  ``value`` is a scalar operand for :class:`PointSpec` and an
    array variable otherwise.  These statements are the principal *circuit
    points* of the short-circuiting optimization (paper section V).
    """

    src: str
    spec: IndexSpec
    value: Operand


@dataclass
class Block:
    """A sequence of statements and the names of the produced results."""

    stmts: List["Let"]
    result: Tuple[str, ...]

    def __post_init__(self):
        self.result = tuple(self.result)


@dataclass(frozen=True)
class Lambda:
    """Bound parameters plus a body block (used by :class:`Map`)."""

    params: Tuple[str, ...]
    body: Block


@dataclass(frozen=True)
class Map(Exp):
    """A mapnest of width ``width`` (paper fig. 6b).

    The body is evaluated once per thread index ``0 <= i < width`` (the
    lambda's single parameter).  Each of the body's results (scalars or
    arrays) is implicitly written to row ``i`` of a corresponding fresh
    result array -- the implicit circuit point ``xss[i] = r`` that the
    short-circuiting analysis exploits.
    """

    width: SymExpr
    lam: Lambda

    def __post_init__(self):
        object.__setattr__(self, "width", sym(self.width))


@dataclass(frozen=True)
class Loop(Exp):
    """``loop (p1=x1, ..) for i < count do body`` (paper section II-C).

    ``carried`` pairs each loop parameter with its initializer variable;
    the body block's results become the next iteration's parameters, and
    the final parameters are the loop's value.
    """

    carried: Tuple[Tuple[Param, str], ...]
    index: str
    count: SymExpr
    body: Block

    def __post_init__(self):
        object.__setattr__(self, "count", sym(self.count))


@dataclass(frozen=True)
class If(Exp):
    """``if c then .. else ..`` returning (possibly array) values."""

    cond: Operand
    then_block: Block
    else_block: Block


@dataclass(frozen=True)
class Reduce(Exp):
    """Parallel reduction with a builtin operator: add, min, max, ...

    The GPU implementation is a tree reduction (one kernel); Rodinia NN's
    *sequential* reference reduction is modelled in the cost model, which
    is how table VII's large ref-relative speedups arise.
    """

    op: str
    src: str


@dataclass(frozen=True)
class ArgMin(Exp):
    """Index+value of the minimum element of a rank-1 array (for NN)."""

    src: str


@dataclass(frozen=True)
class Alloc(Exp):
    """Allocate a memory block of ``size`` elements of ``dtype``.

    Only introduced by the memory pipeline; never written by frontends.
    ``space`` names the memory tier the block lives in (``hbm`` /
    ``scratch`` / ``regs``, see :mod:`repro.mem.spaces`); the alloc is
    the source of truth that every binding's space must agree with
    (verifier rule MS02).
    """

    size: SymExpr
    dtype: str
    space: str = "hbm"

    def __post_init__(self):
        object.__setattr__(self, "size", sym(self.size))


@dataclass(frozen=True)
class FusedRecord:
    """One producer ``map`` fused into this (consumer) statement.

    Written by :mod:`repro.opt.fuse` when it inlines a producer's body
    into its sole consumer and deletes the intermediate array.  Like
    ``mem`` annotations this is a deletable add-on: the executor uses it
    for ``fused_kernels`` / ``bytes_elided_fusion`` accounting, the
    pseudo-CUDA backend for a provenance comment, and the verifier's FU
    rules for translation validation -- none of it changes semantics.
    """

    #: Name the producer map bound (the elided intermediate array).
    producer: str
    #: The intermediate's (now deleted) memory block.
    mem: str
    #: Producer width == element count of the elided intermediate.
    width: SymExpr
    #: Bytes per element of the elided intermediate.
    elem_bytes: int
    #: Number of consumer read sites the producer body was inlined at.
    reads: int
    #: Memory blocks the original producer+consumer pair wrote (the
    #: fused kernel must write exactly these minus ``mem`` -- rule FU02).
    write_mems: Tuple[str, ...] = ()
    #: Rank of the elided intermediate (1 for a plain map producer,
    #: N for a fused rank-N mapnest).  ``width`` stays the total element
    #: count regardless of rank, so the accounting formula is rank-blind.
    rank: int = 1
    #: True on every record except one per (producer, mem) group: a
    #: multi-consumer producer is *duplicated* into each consumer, and
    #: only the primary record claims the elided write (rule FU03).
    duplicated: bool = False
    #: Statement count of the inlined producer body -- the recomputation
    #: cost the duplication cost model accepted.
    recompute_stmts: int = 0
    #: 1 for a direct fusion; 1 + the producer's own deepest record for
    #: a chain (A fused into B, then B fused into C carries depth 2).
    chain_depth: int = 1
    #: Canonical (alpha-renamed) hash of the producer body as actually
    #: spliced at each read site, computed by the pass at inline time.
    #: Rule FU03 requires every hash in a (producer, mem) group to agree:
    #: duplicated bodies must be bit-equivalent at every site.
    site_hashes: Tuple[str, ...] = ()


@dataclass
class Let:
    """One statement: bind ``pattern`` to the value of ``exp``.

    ``last_uses`` is filled by the last-use analysis: the set of array
    variables (together with all their aliases) that are dead after this
    statement -- the ``b^lu`` annotations of paper section V.
    """

    pattern: List[PatElem]
    exp: Exp
    last_uses: frozenset = field(default_factory=frozenset)
    #: Memory blocks whose lifetime ends at this statement, filled by
    #: :mod:`repro.reuse.liveranges`.  Pure accounting for the executor's
    #: high-water mark -- like ``mem`` annotations, deletable without
    #: changing program semantics.
    mem_frees: Tuple[str, ...] = ()
    #: Producer maps vertically fused into this statement by
    #: :mod:`repro.opt.fuse` (empty for all other statements).
    fused: Tuple[FusedRecord, ...] = ()

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.pattern)


@dataclass
class Fun:
    """A top-level function: the unit of compilation.

    ``assumptions`` seed the symbolic context for the whole body: entries
    are ``("define", var, expr)``, ``("lower", var, expr)``,
    ``("upper", var, expr)`` -- e.g. NW's dataset invariant
    ``n == q*b + 1, q >= 2, b >= 2``.
    """

    name: str
    params: List[Param]
    body: Block
    assumptions: Tuple[Tuple[str, str, SymExpr], ...] = ()

    def build_context(self):
        """Construct the :class:`repro.symbolic.Context` for this function."""
        from repro.symbolic import Context

        ctx = Context()
        for kind, var, expr in self.assumptions:
            if kind == "define":
                ctx.define(var, expr)
            elif kind == "lower":
                ctx.assume_lower(var, expr)
            elif kind == "upper":
                ctx.assume_upper(var, expr)
            else:
                raise ValueError(f"unknown assumption kind {kind!r}")
        # Array shapes are positive by construction.
        for p in self.params:
            if isinstance(p.type, ArrayType):
                for s in p.type.shape:
                    fv = sorted(s.free_vars())
                    if len(fv) == 1 and s == SymExpr.var(fv[0]):
                        ctx.assume_lower(fv[0], 1)
        return ctx


# ----------------------------------------------------------------------
# Traversal helpers
# ----------------------------------------------------------------------
def sub_blocks(exp: Exp) -> List[Block]:
    """The nested blocks of a compound expression (for generic walks)."""
    if isinstance(exp, Map):
        return [exp.lam.body]
    if isinstance(exp, Loop):
        return [exp.body]
    if isinstance(exp, If):
        return [exp.then_block, exp.else_block]
    return []


def operand_vars(op: Operand) -> frozenset:
    """Variable names referenced by a scalar operand."""
    if isinstance(op, str):
        return frozenset({op})
    if isinstance(op, SymExpr):
        return op.free_vars()
    return frozenset()


def spec_vars(spec: IndexSpec) -> frozenset:
    out: frozenset = frozenset()
    if isinstance(spec, PointSpec):
        for i in spec.indices:
            out |= i.free_vars()
    elif isinstance(spec, TripletSpec):
        for a, b, c in spec.triplets:
            out |= a.free_vars() | b.free_vars() | c.free_vars()
    elif isinstance(spec, LmadSpec):
        out |= spec.lmad.free_vars()
    return out


def exp_uses(exp: Exp) -> frozenset:
    """All variable names an expression references directly.

    For compound expressions this includes the free variables of the nested
    blocks (computed transitively).
    """
    if isinstance(exp, VarRef):
        return frozenset({exp.name})
    if isinstance(exp, (Lit, Iota, Scratch, Alloc)):
        base: frozenset = frozenset()
        if isinstance(exp, Iota):
            base |= exp.n.free_vars()
        if isinstance(exp, Scratch):
            for s in exp.shape:
                base |= s.free_vars()
        if isinstance(exp, Alloc):
            base |= exp.size.free_vars()
        return base
    if isinstance(exp, ScalarE):
        return exp.expr.free_vars()
    if isinstance(exp, Replicate):
        out = operand_vars(exp.value)
        for s in exp.shape:
            out |= s.free_vars()
        return out
    if isinstance(exp, BinOp):
        return operand_vars(exp.x) | operand_vars(exp.y)
    if isinstance(exp, UnOp):
        return operand_vars(exp.x)
    if isinstance(exp, Copy):
        return frozenset({exp.src})
    if isinstance(exp, Concat):
        return frozenset(exp.srcs)
    if isinstance(exp, Index):
        out = frozenset({exp.src})
        for i in exp.indices:
            out |= i.free_vars()
        return out
    if isinstance(exp, SliceT):
        out = frozenset({exp.src})
        for a, b, c in exp.triplets:
            out |= a.free_vars() | b.free_vars() | c.free_vars()
        return out
    if isinstance(exp, LmadSlice):
        return frozenset({exp.src}) | exp.lmad.free_vars()
    if isinstance(exp, (Rearrange, Reverse)):
        return frozenset({exp.src})
    if isinstance(exp, Reshape):
        out = frozenset({exp.src})
        for s in exp.shape:
            out |= s.free_vars()
        return out
    if isinstance(exp, Update):
        return frozenset({exp.src}) | spec_vars(exp.spec) | operand_vars(exp.value)
    if isinstance(exp, (Reduce, ArgMin)):
        return frozenset({exp.src})
    if isinstance(exp, Map):
        return exp.width.free_vars() | (
            block_free_vars(exp.lam.body) - frozenset(exp.lam.params)
        )
    if isinstance(exp, Loop):
        out = exp.count.free_vars()
        out |= frozenset(init for _, init in exp.carried)
        bound = frozenset([exp.index]) | frozenset(
            p.name for p, _ in exp.carried
        )
        out |= block_free_vars(exp.body) - bound
        return out
    if isinstance(exp, If):
        return (
            operand_vars(exp.cond)
            | block_free_vars(exp.then_block)
            | block_free_vars(exp.else_block)
        )
    raise TypeError(f"unknown expression {type(exp).__name__}")


def block_free_vars(block: Block) -> frozenset:
    """Free variables of a block (uses minus local bindings)."""
    bound: set = set()
    free: set = set()
    for stmt in block.stmts:
        free |= exp_uses(stmt.exp) - bound
        bound |= set(stmt.names)
    free |= set(block.result) - bound
    return frozenset(free)
