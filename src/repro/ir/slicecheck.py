"""Safety checks for generalized LMAD slices and updates (paper III-B).

The source language inserts *dynamic checks* for LMAD slices "whenever
necessary to verify that all strides are non-zero, and that the LMAD
dimensions do not overlap, meaning that the update is guaranteed to not
introduce output dependences".  This module provides both halves:

* :func:`static_update_safe` -- the compile-time sufficient condition
  (via :func:`repro.lmad.overlap.lmad_injective`); when it succeeds the
  dynamic check can be elided;
* :func:`check_update_lmad` / :func:`check_slice_bounds` -- the run-time
  checks the interpreter and executor fall back to.

Checks follow the paper's theorem: pairwise-distinct points are guaranteed
when, sorted by ascending stride, every stride exceeds the span of the
dimensions below it.
"""

from __future__ import annotations

from typing import Mapping, Optional

import numpy as np

from repro.lmad.lmad import Lmad
from repro.lmad.overlap import lmad_injective
from repro.symbolic import Prover


class SliceCheckError(Exception):
    """A dynamic LMAD slice/update check failed."""


def static_update_safe(lmad: Lmad, prover: Optional[Prover] = None) -> bool:
    """Compile-time sufficient condition: the update has distinct points."""
    return lmad_injective(lmad, prover)


def concrete_offsets(lmad: Lmad, env: Mapping[str, int]) -> np.ndarray:
    """Flat offsets of a concrete LMAD, as an ndarray of its shape."""
    inst = lmad.substitute(
        {v: int(env[v]) for v in lmad.free_vars()}
    )
    shape = tuple(d.shape.as_int() for d in inst.dims)
    offs = np.full(shape, int(inst.offset.as_int()), dtype=np.int64)
    for axis, d in enumerate(inst.dims):
        n, s = d.shape.as_int(), d.stride.as_int()
        idx = [1] * len(shape)
        idx[axis] = n
        offs = offs + (np.arange(n, dtype=np.int64) * s).reshape(idx)
    return offs


def check_slice_bounds(
    lmad: Lmad, size: int, env: Mapping[str, int], what: str = "slice"
) -> np.ndarray:
    """Dynamic bounds check; returns the offsets on success."""
    offs = concrete_offsets(lmad, env)
    if offs.size and (offs.min() < 0 or offs.max() >= size):
        raise SliceCheckError(
            f"{what} out of bounds: offsets {offs.min()}..{offs.max()} "
            f"vs array size {size}"
        )
    return offs


def check_update_lmad(
    lmad: Lmad, size: int, env: Mapping[str, int]
) -> np.ndarray:
    """Full dynamic update check: bounds + non-zero strides + distinctness.

    Returns the offsets so callers can reuse them for the actual write.
    """
    inst = lmad.substitute({v: int(env[v]) for v in lmad.free_vars()})
    for d in inst.dims:
        if d.stride.as_int() == 0 and (d.shape.as_int() or 0) > 1:
            raise SliceCheckError(
                f"update slice has zero stride in dimension {d}"
            )
    offs = check_slice_bounds(lmad, size, env, what="update slice")
    flat = offs.reshape(-1)
    if np.unique(flat).size != flat.size:
        raise SliceCheckError(
            "update slice has overlapping points (output dependences)"
        )
    return offs
