"""The halo-exchange program: a strided rank-1 copy in the memory IR.

Sharding (:mod:`repro.shard.runner`) materializes every ghost-region
refresh as an execution of this program rather than a host-side numpy
assignment, so halo traffic flows through the same executor accounting
as kernel traffic: a ``map`` gathers ``len`` elements of the source at
stride ``sstr`` from ``soff``, and an ``update`` scatters them into the
destination at stride ``dstr`` from ``doff``.  A stride of 1 moves a
contiguous row block (hotspot/LBM row halos); a stride of the slab
width moves a matrix column (NW's band-boundary ghost column).

Compiled with the full preset, short-circuiting lands the gathered
values directly in the destination block, so one exchange costs exactly
one read and one write of the payload.
"""

from __future__ import annotations

from repro.ir import FunBuilder, f32
from repro.ir.ast import Fun
from repro.ir.types import ScalarType
from repro.lmad import lmad
from repro.symbolic import Var


def build_halo_copy() -> Fun:
    bld = FunBuilder("halo_copy")
    for s in ("ls", "ld", "soff", "sstr", "doff", "dstr", "cnt"):
        bld.param(s, ScalarType("i64"))
    S = bld.param("S", f32(Var("ls")))
    D = bld.param("D", f32(Var("ld")))
    bld.assume_lower("cnt", 1)
    bld.assume_lower("sstr", 1)
    bld.assume_lower("dstr", 1)
    bld.assume_lower("soff", 0)
    bld.assume_lower("doff", 0)

    mp = bld.map_(Var("cnt"), index="k")
    v = mp.index(S, [Var("soff") + mp.idx * Var("sstr")])
    mp.returns(v)
    (X,) = mp.end()
    D2 = bld.update_lmad(D, lmad(Var("doff"), [(Var("cnt"), Var("dstr"))]), X)
    bld.returns(D2)
    return bld.build()
