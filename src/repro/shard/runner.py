"""Multi-device sharding: run a benchmark split across N simulated GPUs.

The outermost grid dimension of a benchmark is partitioned into N
per-device slabs, each padded with explicit ghost (halo) regions.  The
per-device step program is a real memory-IR program (the benchmark
module's ``build_rect``) compiled once and served N times per step; the
ghost refreshes between steps are executions of the
:mod:`repro.shard.halo` copy program, so *all* traffic -- compute and
exchange alike -- flows through executor accounting.  Bytes moved
between two distinct devices are tallied into
:attr:`repro.mem.stats.ExecStats.halo_bytes`; a single-device run
performs the same copies (periodic wraps, edge replication) but moves
nothing across the interconnect, so its ``halo_bytes`` is 0.

Decompositions:

* **hotspot** -- row bands; ghost rows are the neighbouring devices'
  edge rows (edge replication at the global boundary).  One exchange
  per boundary per direction per time step.
* **lbm** -- row bands with *periodic* wrap: device 0's top ghost comes
  from device N-1's bottom row and vice versa.
* **nw** -- column bands of ``q/N`` block-columns each; devices sweep
  the global anti-diagonals as a wavefront pipeline, and after each
  sweep every device re-sends its right boundary column to its right
  neighbour's ghost column.  The pipeline's fill/drain shows up as
  idle devices at the early/late diagonals -- exactly the scaling
  -efficiency loss a real blocked wavefront pays.

Simulated time: per step, devices run concurrently (max of their cost
-model times) and the exchange phase pays max over concurrent link
transfers (latency + payload/bandwidth); cross-device efficiency is
``T(1) / (N * T(N))``.  Outputs are required to be bit-identical across
device counts -- the decomposition only moves *where* a cell is
computed, never its f32 expression tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.compiler import compile_fun
from repro.gpu import A100, CostModel, Device
from repro.mem.exec import MemExecutor, RuntimeArray
from repro.mem.stats import ExecStats
from repro.shard.halo import build_halo_copy

#: Simulated inter-device link (NVLink-class): bytes/second and per
#: -transfer latency.  Only cross-device exchanges pay these; same
#: -device ghost refreshes are local copies at stream bandwidth.
LINK_BANDWIDTH = 64e9
LINK_LATENCY = 5e-6


@dataclass
class ShardResult:
    """One sharded run of one benchmark."""

    name: str
    devices: int
    steps: int
    #: Bytes moved across the inter-device links (payload, not doubled
    #: for read+write); 0 for a single device.
    halo_bytes: int
    halo_exchanges: int
    #: Simulated wall-clock: per step, max over concurrent devices plus
    #: the exchange phase.
    sim_time_s: float
    #: Sum of all devices' compute time (work, not wall-clock).
    compute_time_s: float
    outputs: List[np.ndarray]
    #: Aggregate executor statistics over every program run of this
    #: sharded execution, with ``halo_bytes`` stamped.
    stats: ExecStats = field(default_factory=ExecStats)


class _Runner:
    """Shared machinery: program serving, halo copies, time accounting."""

    def __init__(self, device: Device):
        self.device = device
        self.cm = CostModel(device)
        self.halo_prog = compile_fun(
            build_halo_copy(), short_circuit=True, fuse=True
        )
        self.halo_bytes = 0
        self.halo_exchanges = 0
        self.sim_time_s = 0.0
        self.compute_time_s = 0.0
        self.agg = ExecStats()
        self._peak = 0

    # ------------------------------------------------------------------
    def run_program(self, compiled, **inputs) -> Tuple[np.ndarray, float]:
        """Run one compiled program; returns (first output array, time)."""
        ex = MemExecutor(compiled.fun)
        vals, st = ex.run(**inputs)
        out = self._materialize(ex, vals[0])
        self.agg.merge_scaled(st, 1.0)
        self._peak = max(self._peak, st.peak_bytes)
        t = self.cm.total_time(st)
        self.compute_time_s += t
        return out, t

    @staticmethod
    def _materialize(ex: MemExecutor, val) -> np.ndarray:
        if isinstance(val, RuntimeArray):
            return np.asarray(ex.mem[val.mem][val.ixfn.gather_offsets({})])
        return np.asarray(val)

    # ------------------------------------------------------------------
    def halo_copy(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        soff: int,
        sstr: int,
        doff: int,
        dstr: int,
        cnt: int,
        cross: bool,
    ) -> float:
        """Refresh one ghost region of ``dst`` from ``src`` (flat views).

        Executes the halo program and writes the result back into
        ``dst``; returns the exchange's simulated time.  ``cross`` marks
        a transfer between two distinct devices (tallied + link-priced).
        """
        sflat = np.ascontiguousarray(src).reshape(-1)
        dflat = np.ascontiguousarray(dst).reshape(-1)
        out, _ = self.run_program(
            self.halo_prog,
            ls=sflat.size,
            ld=dflat.size,
            soff=soff,
            sstr=sstr,
            doff=doff,
            dstr=dstr,
            cnt=cnt,
            S=sflat,
            D=dflat,
        )
        np.copyto(dst.reshape(-1), out.reshape(-1))
        payload = cnt * 4
        if cross:
            self.halo_bytes += payload
            self.halo_exchanges += 1
            return LINK_LATENCY + payload / LINK_BANDWIDTH
        return payload / self.device.stream_bandwidth

    # ------------------------------------------------------------------
    def finish(
        self, name: str, devices: int, steps: int, outputs: List[np.ndarray]
    ) -> ShardResult:
        self.agg.halo_bytes = self.halo_bytes
        self.agg.peak_bytes = self._peak
        return ShardResult(
            name=name,
            devices=devices,
            steps=steps,
            halo_bytes=self.halo_bytes,
            halo_exchanges=self.halo_exchanges,
            sim_time_s=self.sim_time_s,
            compute_time_s=self.compute_time_s,
            outputs=outputs,
            stats=self.agg,
        )


# ----------------------------------------------------------------------
# hotspot: row bands with edge-replicated global boundary
# ----------------------------------------------------------------------
def _run_hotspot(args: Sequence[int], devices: int, device: Device) -> ShardResult:
    from repro.bench.programs import hotspot as module

    nv, iters = args
    if nv % devices:
        raise ValueError(f"hotspot: {devices} devices do not divide n={nv}")
    h = nv // devices
    inp = module.inputs_for(nv, iters)
    T, P = inp["T"], inp["P"]

    rn = _Runner(device)
    prog = compile_fun(module.build_rect(), short_circuit=True, fuse=True)

    slabs, pslabs = [], []
    for d in range(devices):
        slab = np.zeros((h + 2, nv), dtype=np.float32)
        slab[1 : h + 1] = T[d * h : (d + 1) * h]
        pslab = np.zeros((h + 2, nv), dtype=np.float32)
        pslab[1 : h + 1] = P[d * h : (d + 1) * h]
        slabs.append(slab)
        pslabs.append(pslab)

    row = nv  # elements per row
    for _ in range(iters):
        # Ghost refresh: neighbours, or edge replication at the boundary.
        t_halo = 0.0
        for d in range(devices):
            if d > 0:
                t = rn.halo_copy(slabs[d - 1], slabs[d], h * row, 1, 0, 1,
                                 row, cross=True)
            else:
                t = rn.halo_copy(slabs[0], slabs[0], 1 * row, 1, 0, 1,
                                 row, cross=False)
            t_halo = max(t_halo, t)
            if d < devices - 1:
                t = rn.halo_copy(slabs[d + 1], slabs[d], 1 * row, 1,
                                 (h + 1) * row, 1, row, cross=True)
            else:
                t = rn.halo_copy(slabs[d], slabs[d], h * row, 1,
                                 (h + 1) * row, 1, row, cross=False)
            t_halo = max(t_halo, t)
        t_step = 0.0
        for d in range(devices):
            out, t = rn.run_program(
                prog, h=h, n=nv, T=slabs[d], P=pslabs[d]
            )
            slabs[d] = out.astype(np.float32, copy=False).reshape(h + 2, nv)
            t_step = max(t_step, t)
        rn.sim_time_s += t_step + t_halo

    grid = np.concatenate([s[1 : h + 1] for s in slabs], axis=0)
    return rn.finish("hotspot", devices, iters, [grid])


# ----------------------------------------------------------------------
# lbm: row bands with periodic wrap
# ----------------------------------------------------------------------
def _run_lbm(args: Sequence[int], devices: int, device: Device) -> ShardResult:
    from repro.bench.programs import lbm as module

    nv, steps = args
    if nv % devices:
        raise ValueError(f"lbm: {devices} devices do not divide n={nv}")
    h = nv // devices
    inp = module.inputs_for(nv, steps)
    f = inp["f"].reshape(nv, nv * 9)  # row-major cell rows

    rn = _Runner(device)
    prog = compile_fun(module.build_rect(), short_circuit=True, fuse=True)

    slabs = []
    for d in range(devices):
        slab = np.zeros((h + 2, nv * 9), dtype=np.float32)
        slab[1 : h + 1] = f[d * h : (d + 1) * h]
        slabs.append(slab)

    row = nv * 9
    for _ in range(steps):
        t_halo = 0.0
        for d in range(devices):
            up = (d - 1) % devices
            dn = (d + 1) % devices
            t = rn.halo_copy(slabs[up], slabs[d], h * row, 1, 0, 1, row,
                             cross=up != d)
            t_halo = max(t_halo, t)
            t = rn.halo_copy(slabs[dn], slabs[d], 1 * row, 1,
                             (h + 1) * row, 1, row, cross=dn != d)
            t_halo = max(t_halo, t)
        t_step = 0.0
        for d in range(devices):
            out, t = rn.run_program(
                prog,
                h=h,
                n=nv,
                f=slabs[d].reshape((h + 2) * nv, 9),
                dirs=inp["dirs"],
                w=inp["w"],
            )
            slabs[d] = out.astype(np.float32, copy=False).reshape(
                h + 2, nv * 9
            )
            t_step = max(t_step, t)
        rn.sim_time_s += t_step + t_halo

    grid = np.concatenate([s[1 : h + 1] for s in slabs], axis=0)
    return rn.finish("lbm", devices, steps, [grid.reshape(nv * nv, 9)])


# ----------------------------------------------------------------------
# nw: column bands sweeping the global anti-diagonals as a pipeline
# ----------------------------------------------------------------------
def _run_nw(args: Sequence[int], devices: int, device: Device) -> ShardResult:
    from repro.bench.programs import nw as module

    qv, bv = args
    if qv % devices:
        raise ValueError(f"nw: {devices} devices do not divide q={qv}")
    qc = qv // devices
    nv = qv * bv + 1
    w = qc * bv + 1
    A = module.make_input(nv).reshape(nv, nv)

    rn = _Runner(device)
    prog = compile_fun(module.build_rect(), short_circuit=True, fuse=True)

    # Device d's slab: its qc*b matrix columns plus the ghost column on
    # the left (global column d*qc*b, device 0's being the real col 0).
    slabs = [
        np.ascontiguousarray(A[:, d * qc * bv : d * qc * bv + w])
        for d in range(devices)
    ]

    diagonals = 2 * qv - 1
    for i in range(diagonals):
        active = []
        for d in range(devices):
            bj_lo = max(d * qc, i - qv + 1)
            bj_hi = min((d + 1) * qc, i + 1)
            if bj_hi > bj_lo:
                active.append((d, bj_lo, bj_hi))
        t_step = 0.0
        for d, bj_lo, bj_hi in active:
            cnt = bj_hi - bj_lo
            bj0 = bj_hi - 1
            bi0 = i - bj0
            lb0 = bj0 - d * qc
            woff = (bi0 * bv + 1) * w + (lb0 * bv + 1)
            out, t = rn.run_program(
                prog,
                b=bv,
                nr=nv,
                w=w,
                cnt=cnt,
                woff=woff,
                gdiag=i,
                A=slabs[d].reshape(-1),
            )
            slabs[d] = out.astype(np.float32, copy=False).reshape(nv, w)
            t_step = max(t_step, t)
        # Right boundary column of every active device feeds the right
        # neighbour's ghost column before the next sweep.
        t_halo = 0.0
        for d, _lo, _hi in active:
            if d + 1 < devices:
                t = rn.halo_copy(
                    slabs[d], slabs[d + 1], w - 1, w, 0, w, nv, cross=True
                )
                t_halo = max(t_halo, t)
        rn.sim_time_s += t_step + t_halo

    parts = [slabs[0]] + [s[:, 1:] for s in slabs[1:]]
    grid = np.concatenate(parts, axis=1)
    return rn.finish("nw", devices, diagonals, [grid.reshape(-1)])


#: Benchmark name -> sharded runner.
SHARDED: Dict[str, Callable[..., ShardResult]] = {
    "hotspot": _run_hotspot,
    "lbm": _run_lbm,
    "nw": _run_nw,
}


def run_sharded(
    name: str,
    args: Sequence[int],
    devices: int,
    device: Device = A100,
) -> ShardResult:
    """Run benchmark ``name`` at ``args`` split across ``devices``."""
    try:
        runner = SHARDED[name]
    except KeyError:
        raise KeyError(
            f"no sharded decomposition for {name!r} "
            f"(available: {', '.join(sorted(SHARDED))})"
        ) from None
    return runner(args, devices, device)


def scaling_report(
    name: str,
    args: Sequence[int],
    devices: int,
    device: Device = A100,
) -> Dict[str, object]:
    """N-device vs 1-device differential: identity, halo, efficiency."""
    base = run_sharded(name, args, 1, device)
    shard = run_sharded(name, args, devices, device)
    identical = len(base.outputs) == len(shard.outputs) and all(
        np.array_equal(a, b) for a, b in zip(base.outputs, shard.outputs)
    )
    efficiency = (
        base.sim_time_s / (devices * shard.sim_time_s)
        if shard.sim_time_s > 0
        else 0.0
    )
    return {
        "benchmark": name,
        "dataset": list(args),
        "devices": devices,
        "outputs_identical": identical,
        "halo_bytes": shard.halo_bytes,
        "halo_exchanges": shard.halo_exchanges,
        "base_halo_bytes": base.halo_bytes,
        "sim_time_1dev_s": base.sim_time_s,
        "sim_time_ndev_s": shard.sim_time_s,
        "efficiency": efficiency,
        "speedup": (
            base.sim_time_s / shard.sim_time_s if shard.sim_time_s else 0.0
        ),
    }
