"""Multi-device sharding simulation (see :mod:`repro.shard.runner`)."""

from repro.shard.halo import build_halo_copy
from repro.shard.runner import (
    LINK_BANDWIDTH,
    LINK_LATENCY,
    SHARDED,
    ShardResult,
    run_sharded,
    scaling_report,
)

__all__ = [
    "LINK_BANDWIDTH",
    "LINK_LATENCY",
    "SHARDED",
    "ShardResult",
    "build_halo_copy",
    "run_sharded",
    "scaling_report",
]
